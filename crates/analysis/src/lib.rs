//! The security-analyst dashboard engine.
//!
//! The paper's third capability: "a visual display of both system models
//! and attack vectors in a common graphical user interface to enable
//! analysis and decision making". This crate is that dashboard minus the
//! pixels — every operation the paper's analyst performs is an API here:
//!
//! * [`AssociationMap`] — the "main output": attack vectors associated to
//!   every model element, plus per-attribute counts (Table 1 rows);
//! * [`Dashboard`] — change the model on the fly and immediately see new
//!   results, with fidelity projection and filter pipelines;
//! * [`SystemPosture`]/[`whatif`] — "a component … that relates with less
//!   attack vectors than a functionally equivalent system has a better
//!   security posture";
//! * [`surface`] — entry-point reachability and attack paths over the
//!   model topology;
//! * [`stpa`]/[`consequence`] — the missing link the paper calls for:
//!   from matched attack vectors through unsafe control actions to
//!   simulated physical consequences and losses;
//! * [`render`] — text tables, Graphviz DOT of the merged view (Fig 1),
//!   and JSON artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod associate;
pub mod consequence;
mod dashboard;
pub mod fleet;
mod posture;
pub mod recommend;
pub mod render;
pub mod report;
pub mod stpa;
pub mod surface;
pub mod verdict;
pub mod whatif;

pub use associate::{attribute_rows, AssociationMap, AttributeRow};
pub use dashboard::Dashboard;
pub use fleet::{
    aggregate, aggregate_hash, aggregate_json, aggregate_table, records_csv, ClassStats,
    FleetAggregate,
};
pub use posture::{ComponentPosture, SystemPosture};
pub use verdict::{
    campaign_aggregate, campaign_csv, campaign_json, campaign_table, CampaignAggregate,
    ComponentVerdicts,
};
pub use whatif::{ModelChange, WhatIfReport};
