//! Aggregate hazard statistics over fleet campaigns.
//!
//! A campaign ([`cpssec_scada::run_campaign`]) yields per-scenario
//! records; this module folds them into the paper-comparable outputs:
//! **P(hazard | attack class)**, per-class product-quality breakdowns,
//! and **time-to-hazard distributions** (ticks from injection to the
//! first hazard, bucketed by [`cpssec_obs::Histogram`]). A canonical
//! FNV-1a hash over the records ([`aggregate_hash`]) lets two runs —
//! different machines, different thread counts — prove they produced
//! identical statistics by comparing one number.

use cpssec_model::fnv1a_64;
use cpssec_obs::hist::Snapshot;
use cpssec_obs::Histogram;
use cpssec_scada::{AttackClass, ProductQuality, ScenarioRecord};

use crate::render::Json;

/// Statistics for one attack class.
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// The class.
    pub class: AttackClass,
    /// Scenarios sampled into this class.
    pub scenarios: u64,
    /// Scenarios in which at least one hazard fired.
    pub hazards: u64,
    /// Scenarios ending in physical destruction.
    pub destroyed: u64,
    /// Scenarios ending with a ruined (but intact) batch.
    pub ruined: u64,
    /// Scenarios ending with a nominal product.
    pub nominal: u64,
    /// Scenarios in which the SIS emergency stop engaged.
    pub emergency_stops: u64,
    /// Distribution of ticks from injection to first hazard.
    pub time_to_hazard: Snapshot,
}

impl ClassStats {
    /// P(hazard | this class); zero when the class was never sampled.
    #[must_use]
    pub fn hazard_probability(&self) -> f64 {
        if self.scenarios == 0 {
            0.0
        } else {
            self.hazards as f64 / self.scenarios as f64
        }
    }
}

/// The full aggregate over one campaign's records.
#[derive(Debug, Clone)]
pub struct FleetAggregate {
    /// Total scenarios.
    pub scenarios: u64,
    /// Total scenarios with at least one hazard.
    pub hazards: u64,
    /// Per-class breakdown, in [`AttackClass::ALL`] order, sampled
    /// classes only.
    pub per_class: Vec<ClassStats>,
    /// Time-to-hazard distribution across all classes.
    pub time_to_hazard: Snapshot,
    /// Canonical hash of the underlying records ([`aggregate_hash`]).
    pub records_hash: u64,
}

/// One record in canonical text form — the byte stream both the hash
/// and the CSV export are built from.
fn record_line(record: &ScenarioRecord) -> String {
    let hazard = match &record.hazard {
        Some((name, at)) => format!("{name}@{at}"),
        None => "-".to_owned(),
    };
    format!(
        "{},{},{},{},{},{},{},{},{}",
        record.index,
        record.seed,
        record.class,
        record.inject_tick,
        record.magnitude,
        record.product,
        hazard,
        u8::from(record.emergency_stopped),
        record.ticks,
    )
}

/// Canonical FNV-1a hash over the records. Identical records — any
/// thread count, any machine — produce the identical hash.
#[must_use]
pub fn aggregate_hash(records: &[ScenarioRecord]) -> u64 {
    let mut text = String::new();
    for record in records {
        text.push_str(&record_line(record));
        text.push('\n');
    }
    fnv1a_64(text.as_bytes())
}

/// Renders the records as CSV with a header row (index order).
#[must_use]
pub fn records_csv(records: &[ScenarioRecord]) -> String {
    let mut out = String::from(
        "index,seed,class,inject_tick,magnitude,product,hazard,emergency_stopped,ticks\n",
    );
    for record in records {
        out.push_str(&record_line(record));
        out.push('\n');
    }
    out
}

/// Folds campaign records into the aggregate.
#[must_use]
pub fn aggregate(records: &[ScenarioRecord]) -> FleetAggregate {
    let overall = Histogram::new();
    let mut per_class = Vec::new();
    for class in AttackClass::ALL {
        let of_class: Vec<&ScenarioRecord> = records.iter().filter(|r| r.class == class).collect();
        if of_class.is_empty() {
            continue;
        }
        let histogram = Histogram::new();
        let (mut hazards, mut destroyed, mut ruined, mut nominal, mut emergency_stops) =
            (0, 0, 0, 0, 0);
        for record in &of_class {
            if record.hazard.is_some() {
                hazards += 1;
                let ticks = record.ticks_to_hazard().unwrap_or(0);
                histogram.record(ticks);
                overall.record(ticks);
            }
            match record.product {
                ProductQuality::Destroyed => destroyed += 1,
                ProductQuality::Nominal => nominal += 1,
                _ => ruined += 1,
            }
            if record.emergency_stopped {
                emergency_stops += 1;
            }
        }
        per_class.push(ClassStats {
            class,
            scenarios: of_class.len() as u64,
            hazards,
            destroyed,
            ruined,
            nominal,
            emergency_stops,
            time_to_hazard: histogram.snapshot(),
        });
    }
    FleetAggregate {
        scenarios: records.len() as u64,
        hazards: records.iter().filter(|r| r.hazard.is_some()).count() as u64,
        per_class,
        time_to_hazard: overall.snapshot(),
        records_hash: aggregate_hash(records),
    }
}

/// Serializes the aggregate as a JSON artifact (the `POST
/// /scenarios/batch` response body and the `cpssec fleet --json`
/// output share this shape).
#[must_use]
pub fn aggregate_json(aggregate: &FleetAggregate) -> Json {
    let classes = aggregate
        .per_class
        .iter()
        .map(|stats| {
            Json::Object(vec![
                ("class".into(), stats.class.as_str().into()),
                ("scenarios".into(), (stats.scenarios as usize).into()),
                ("hazards".into(), (stats.hazards as usize).into()),
                ("pHazard".into(), stats.hazard_probability().into()),
                ("destroyed".into(), (stats.destroyed as usize).into()),
                ("ruined".into(), (stats.ruined as usize).into()),
                ("nominal".into(), (stats.nominal as usize).into()),
                (
                    "emergencyStops".into(),
                    (stats.emergency_stops as usize).into(),
                ),
                (
                    "ticksToHazardP50".into(),
                    (stats.time_to_hazard.quantile_us(0.5) as usize).into(),
                ),
                (
                    "ticksToHazardP90".into(),
                    (stats.time_to_hazard.quantile_us(0.9) as usize).into(),
                ),
            ])
        })
        .collect();
    Json::Object(vec![
        ("scenarios".into(), (aggregate.scenarios as usize).into()),
        ("hazards".into(), (aggregate.hazards as usize).into()),
        ("classes".into(), Json::Array(classes)),
        (
            "ticksToHazardP50".into(),
            (aggregate.time_to_hazard.quantile_us(0.5) as usize).into(),
        ),
        (
            "ticksToHazardP90".into(),
            (aggregate.time_to_hazard.quantile_us(0.9) as usize).into(),
        ),
        (
            "recordsHash".into(),
            format!("{:016x}", aggregate.records_hash).as_str().into(),
        ),
    ])
}

/// Renders the aggregate as an aligned text table for the CLI.
#[must_use]
pub fn aggregate_table(aggregate: &FleetAggregate) -> String {
    let rows: Vec<Vec<String>> = aggregate
        .per_class
        .iter()
        .map(|stats| {
            vec![
                stats.class.to_string(),
                stats.scenarios.to_string(),
                stats.hazards.to_string(),
                format!("{:.3}", stats.hazard_probability()),
                stats.destroyed.to_string(),
                stats.emergency_stops.to_string(),
                stats.time_to_hazard.quantile_us(0.5).to_string(),
            ]
        })
        .collect();
    crate::render::text_table(
        &[
            "class",
            "runs",
            "hazards",
            "P(hazard)",
            "destroyed",
            "e-stops",
            "p50 ticks-to-hazard",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_scada::{run_campaign, CampaignSpec};

    fn records() -> Vec<ScenarioRecord> {
        let mut spec = CampaignSpec::new(32, 0xFEED);
        spec.threads = 2;
        run_campaign(&spec)
    }

    #[test]
    fn aggregate_counts_are_consistent() {
        let records = records();
        let agg = aggregate(&records);
        assert_eq!(agg.scenarios, 32);
        let by_class: u64 = agg.per_class.iter().map(|c| c.scenarios).sum();
        assert_eq!(by_class, 32);
        let hazards: u64 = agg.per_class.iter().map(|c| c.hazards).sum();
        assert_eq!(hazards, agg.hazards);
        assert_eq!(agg.time_to_hazard.count, agg.hazards);
        for stats in &agg.per_class {
            assert_eq!(
                stats.scenarios,
                stats.destroyed + stats.ruined + stats.nominal
            );
            let p = stats.hazard_probability();
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn nominal_class_has_no_hazards() {
        let agg = aggregate(&records());
        let nominal = agg
            .per_class
            .iter()
            .find(|c| c.class == AttackClass::Nominal)
            .expect("32 draws hit nominal");
        assert_eq!(nominal.hazards, 0);
        assert_eq!(nominal.hazard_probability(), 0.0);
    }

    #[test]
    fn hash_is_stable_and_order_sensitive() {
        let records = records();
        assert_eq!(aggregate_hash(&records), aggregate_hash(&records));
        let mut reversed = records.clone();
        reversed.reverse();
        assert_ne!(
            aggregate_hash(&records),
            aggregate_hash(&reversed),
            "canonical form is index-ordered"
        );
    }

    #[test]
    fn json_artifact_parses_and_carries_the_hash() {
        let records = records();
        let agg = aggregate(&records);
        let text = aggregate_json(&agg).to_text();
        cpssec_attackdb::json::parse(&text).expect("artifact parses");
        assert!(text.contains(&format!("\"recordsHash\":\"{:016x}\"", agg.records_hash)));
        assert!(text.contains("\"pHazard\""));
    }

    #[test]
    fn csv_has_header_and_one_line_per_record() {
        let records = records();
        let csv = records_csv(&records);
        assert_eq!(csv.lines().count(), records.len() + 1);
        assert!(csv.starts_with("index,seed,class,"));
        assert!(csv.lines().nth(1).unwrap().starts_with("0,"));
    }

    #[test]
    fn table_renders_every_sampled_class() {
        let agg = aggregate(&records());
        let table = aggregate_table(&agg);
        for stats in &agg.per_class {
            assert!(table.contains(stats.class.as_str()), "{table}");
        }
        assert!(table.contains("P(hazard)"));
    }
}
