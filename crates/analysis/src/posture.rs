//! Security posture scoring.
//!
//! The paper's comparison rule is deliberately qualitative: "a component or
//! subsystem that relates with less attack vectors than a functionally
//! equivalent system has a better security posture". The scores here are
//! ordinal instruments for exactly that comparison — lower is better, and
//! only differences between alternatives mean anything. They are *not*
//! risk numbers (the paper is explicit that CVSS measures severity, not
//! risk).

use cpssec_attackdb::{AttackVectorId, Corpus, Severity};
use cpssec_model::{Criticality, SystemModel};
use cpssec_search::MatchSet;

use crate::AssociationMap;

/// Posture of one component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentPosture {
    /// Component name.
    pub component: String,
    /// Component criticality (weights the system roll-up).
    pub criticality: Criticality,
    /// Matched attack patterns.
    pub patterns: usize,
    /// Matched weaknesses.
    pub weaknesses: usize,
    /// Matched vulnerabilities.
    pub vulnerabilities: usize,
    /// Severity-weighted vector mass: each vulnerability contributes its
    /// CVSS base score / 10, each pattern its typical-severity band weight,
    /// each weakness 0.5.
    pub severity_weighted: f64,
    /// The component score: severity-weighted mass × criticality weight.
    pub score: f64,
}

impl ComponentPosture {
    /// Total matched vectors.
    #[must_use]
    pub fn total_vectors(&self) -> usize {
        self.patterns + self.weaknesses + self.vulnerabilities
    }
}

/// Posture of the whole model: per-component postures plus the roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemPosture {
    /// Per-component postures, in component name order.
    pub components: Vec<ComponentPosture>,
    /// Sum of component scores. Lower is better.
    pub total_score: f64,
}

impl SystemPosture {
    /// Computes the posture of `model` from an association map.
    ///
    /// Components present in the model but absent from the map (or vice
    /// versa) are skipped — the map should have been built from the same
    /// model.
    #[must_use]
    pub fn compute(model: &SystemModel, corpus: &Corpus, map: &AssociationMap) -> SystemPosture {
        let mut components = Vec::new();
        for (name, set) in map.iter() {
            let Some(component) = model.component_by_name(name) else {
                continue;
            };
            let severity_weighted = severity_mass(set, corpus);
            let (patterns, weaknesses, vulnerabilities) = set.counts();
            let score = severity_weighted * f64::from(component.criticality().weight());
            components.push(ComponentPosture {
                component: name.to_owned(),
                criticality: component.criticality(),
                patterns,
                weaknesses,
                vulnerabilities,
                severity_weighted,
                score,
            });
        }
        let total_score = components.iter().map(|c| c.score).sum();
        SystemPosture {
            components,
            total_score,
        }
    }

    /// The posture of one component.
    #[must_use]
    pub fn component(&self, name: &str) -> Option<&ComponentPosture> {
        self.components.iter().find(|c| c.component == name)
    }

    /// Whether this posture is better (strictly lower score) than `other`.
    #[must_use]
    pub fn is_better_than(&self, other: &SystemPosture) -> bool {
        self.total_score < other.total_score
    }
}

fn severity_band_weight(severity: Severity) -> f64 {
    match severity {
        Severity::None => 0.0,
        Severity::Low => 0.25,
        Severity::Medium => 0.5,
        Severity::High => 0.75,
        Severity::Critical => 1.0,
    }
}

fn severity_mass(set: &MatchSet, corpus: &Corpus) -> f64 {
    let mut mass = 0.0;
    for hit in set.iter() {
        mass += match hit.id {
            AttackVectorId::Vulnerability(id) => corpus
                .vulnerability(id)
                .and_then(|v| v.cvss())
                .map_or(0.5, |c| c.base_score() / 10.0),
            AttackVectorId::Pattern(id) => corpus
                .pattern(id)
                .and_then(|p| p.typical_severity())
                .map_or(0.5, severity_band_weight),
            AttackVectorId::Weakness(_) => 0.5,
        };
    }
    mass
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::seed_corpus;
    use cpssec_model::Fidelity;
    use cpssec_scada::model::{names, scada_model};
    use cpssec_search::{FilterPipeline, SearchEngine};

    fn posture_at(level: Fidelity) -> SystemPosture {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let model = scada_model();
        let map = AssociationMap::build(&model, &engine, &corpus, level, &FilterPipeline::new());
        SystemPosture::compute(&model, &corpus, &map)
    }

    #[test]
    fn scores_are_nonnegative_and_additive() {
        let posture = posture_at(Fidelity::Implementation);
        assert!(posture.components.iter().all(|c| c.score >= 0.0));
        let sum: f64 = posture.components.iter().map(|c| c.score).sum();
        assert!((sum - posture.total_score).abs() < 1e-9);
    }

    #[test]
    fn concrete_models_score_worse_than_abstract_ones() {
        // More design detail → more matched vectors → higher (worse) score.
        let concrete = posture_at(Fidelity::Implementation);
        let abstract_ = posture_at(Fidelity::Conceptual);
        assert!(abstract_.is_better_than(&concrete));
    }

    #[test]
    fn workstation_has_matched_vectors_at_implementation() {
        let posture = posture_at(Fidelity::Implementation);
        let ws = posture.component(names::WORKSTATION).unwrap();
        assert!(ws.total_vectors() > 0);
        assert!(ws.severity_weighted > 0.0);
    }

    #[test]
    fn criticality_multiplies_the_component_score() {
        let posture = posture_at(Fidelity::Implementation);
        for c in &posture.components {
            if c.severity_weighted > 0.0 {
                let ratio = c.score / c.severity_weighted;
                assert!((ratio - f64::from(c.criticality.weight())).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn component_lookup_by_name() {
        let posture = posture_at(Fidelity::Implementation);
        assert!(posture.component(names::SIS).is_some());
        assert!(posture.component("ghost").is_none());
    }
}
