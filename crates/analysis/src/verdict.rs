//! Table-1-style verdict reports over campaign records.
//!
//! A campaign ([`cpssec_campaign::run_campaign`]) scores every matched
//! exploit chain by physical consequence; this module folds the records
//! into the report the paper's Table 1 cannot express: per component,
//! how many of the textually-matched chains actually *reach a hazard*,
//! how many are *contained* by a barrier, and how many remain
//! *textual-only* associations. The canonical [`ChainRecord`] lines are
//! re-exposed as CSV, and the aggregate carries the campaign's FNV-1a
//! records hash so two runs can prove identity with one number.

use cpssec_campaign::{records_hash, CampaignVerdict, ChainRecord};

use crate::render::Json;

/// Verdict counts for one model component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentVerdicts {
    /// The component the chains attached to.
    pub component: String,
    /// Chains mined from this component's match set.
    pub chains: u64,
    /// Chains whose staged campaign reached a hazard.
    pub reached: u64,
    /// Chains stopped by a firewall, a safety system, or the process
    /// envelope.
    pub contained: u64,
    /// Chains with no executable plan.
    pub textual: u64,
    /// Fastest hazard among this component's chains, ticks from
    /// actuation.
    pub min_time_to_hazard: Option<u64>,
}

/// The full verdict report over one campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignAggregate {
    /// The testbed the campaign ran on ("scada", "water").
    pub testbed: String,
    /// Total chains executed or classified.
    pub chains: u64,
    /// Chains that reached a hazard.
    pub reached: u64,
    /// Chains contained short of a hazard.
    pub contained: u64,
    /// Textual-only chains.
    pub textual: u64,
    /// Per-component breakdown, in record (component) order.
    pub per_component: Vec<ComponentVerdicts>,
    /// Canonical hash of the underlying records
    /// ([`cpssec_campaign::records_hash`]).
    pub records_hash: u64,
}

/// Folds campaign records into the verdict report.
#[must_use]
pub fn campaign_aggregate(testbed: &str, records: &[ChainRecord]) -> CampaignAggregate {
    let mut per_component: Vec<ComponentVerdicts> = Vec::new();
    let (mut reached, mut contained, mut textual) = (0, 0, 0);
    for record in records {
        if per_component
            .last()
            .map_or(true, |c| c.component != record.component)
        {
            per_component.push(ComponentVerdicts {
                component: record.component.clone(),
                chains: 0,
                reached: 0,
                contained: 0,
                textual: 0,
                min_time_to_hazard: None,
            });
        }
        let stats = per_component.last_mut().expect("pushed above");
        stats.chains += 1;
        match &record.verdict {
            CampaignVerdict::ReachedHazard { time_to_hazard, .. } => {
                reached += 1;
                stats.reached += 1;
                stats.min_time_to_hazard = Some(
                    stats
                        .min_time_to_hazard
                        .map_or(*time_to_hazard, |t| t.min(*time_to_hazard)),
                );
            }
            CampaignVerdict::Contained { .. } => {
                contained += 1;
                stats.contained += 1;
            }
            CampaignVerdict::TextualOnly => {
                textual += 1;
                stats.textual += 1;
            }
        }
    }
    CampaignAggregate {
        testbed: testbed.to_owned(),
        chains: records.len() as u64,
        reached,
        contained,
        textual,
        per_component,
        records_hash: records_hash(records),
    }
}

/// Renders the records as CSV with a header row (chain order).
#[must_use]
pub fn campaign_csv(records: &[ChainRecord]) -> String {
    let mut out = String::from("index,seed,chain,component,scenario,stages,verdict\n");
    for record in records {
        out.push_str(&record.record_line());
        out.push('\n');
    }
    out
}

/// Serializes the report as a JSON artifact (the `POST
/// /models/:id/campaigns` response body and the `cpssec campaign
/// --json` output share this shape).
#[must_use]
pub fn campaign_json(aggregate: &CampaignAggregate) -> Json {
    let components = aggregate
        .per_component
        .iter()
        .map(|stats| {
            let mut fields = vec![
                ("component".into(), stats.component.as_str().into()),
                ("chains".into(), (stats.chains as usize).into()),
                ("reachedHazard".into(), (stats.reached as usize).into()),
                ("contained".into(), (stats.contained as usize).into()),
                ("textualOnly".into(), (stats.textual as usize).into()),
            ];
            if let Some(ticks) = stats.min_time_to_hazard {
                fields.push(("minTicksToHazard".into(), (ticks as usize).into()));
            }
            Json::Object(fields)
        })
        .collect();
    Json::Object(vec![
        ("testbed".into(), aggregate.testbed.as_str().into()),
        ("chains".into(), (aggregate.chains as usize).into()),
        ("reachedHazard".into(), (aggregate.reached as usize).into()),
        ("contained".into(), (aggregate.contained as usize).into()),
        ("textualOnly".into(), (aggregate.textual as usize).into()),
        ("components".into(), Json::Array(components)),
        (
            "recordsHash".into(),
            format!("{:016x}", aggregate.records_hash).as_str().into(),
        ),
    ])
}

/// Renders the report as an aligned text table for the CLI.
#[must_use]
pub fn campaign_table(aggregate: &CampaignAggregate) -> String {
    let rows: Vec<Vec<String>> = aggregate
        .per_component
        .iter()
        .map(|stats| {
            vec![
                stats.component.clone(),
                stats.chains.to_string(),
                stats.reached.to_string(),
                stats.contained.to_string(),
                stats.textual.to_string(),
                stats
                    .min_time_to_hazard
                    .map_or_else(|| "-".to_owned(), |t| t.to_string()),
            ]
        })
        .collect();
    crate::render::text_table(
        &[
            "component",
            "chains",
            "reached-hazard",
            "contained",
            "textual-only",
            "min ticks-to-hazard",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_campaign::{run_campaign, CampaignRun, Testbed};

    fn records() -> Vec<ChainRecord> {
        let mut run = CampaignRun::new(Testbed::Centrifuge, 0xFEED);
        run.threads = 2;
        run.chain_limit = 8;
        run_campaign(&run)
    }

    #[test]
    fn aggregate_counts_are_consistent() {
        let records = records();
        let agg = campaign_aggregate("scada", &records);
        assert_eq!(agg.chains, records.len() as u64);
        assert_eq!(agg.reached + agg.contained + agg.textual, agg.chains);
        let by_component: u64 = agg.per_component.iter().map(|c| c.chains).sum();
        assert_eq!(by_component, agg.chains);
        for stats in &agg.per_component {
            assert_eq!(
                stats.reached + stats.contained + stats.textual,
                stats.chains
            );
            assert_eq!(stats.min_time_to_hazard.is_some(), stats.reached > 0);
        }
        assert_eq!(agg.records_hash, records_hash(&records));
    }

    #[test]
    fn json_artifact_parses_and_carries_the_hash() {
        let agg = campaign_aggregate("scada", &records());
        let text = campaign_json(&agg).to_text();
        cpssec_attackdb::json::parse(&text).expect("artifact parses");
        assert!(text.contains(&format!("\"recordsHash\":\"{:016x}\"", agg.records_hash)));
        assert!(text.contains("\"reachedHazard\""));
    }

    #[test]
    fn csv_has_header_and_one_line_per_record() {
        let records = records();
        let csv = campaign_csv(&records);
        assert_eq!(csv.lines().count(), records.len() + 1);
        assert!(csv.starts_with("index,seed,chain,"));
    }

    #[test]
    fn table_renders_every_component() {
        let agg = campaign_aggregate("scada", &records());
        let table = campaign_table(&agg);
        for stats in &agg.per_component {
            assert!(table.contains(&stats.component), "{table}");
        }
        assert!(table.contains("reached-hazard"));
    }
}
