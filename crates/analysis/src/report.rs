//! The full analyst report: everything the dashboard shows, as Markdown.
//!
//! Reports are plain `String`s so they can go to files, terminals, or
//! review tools; the structure mirrors the workflow the paper describes —
//! model, association, posture, attack surface, recommendations, and
//! (when simulation results are supplied) consequences.

use std::fmt::Write as _;

use cpssec_attackdb::Corpus;
use cpssec_model::{Criticality, SystemModel};

use crate::consequence::ConsequenceRecord;
use crate::recommend::recommendations_for;
use crate::surface::attack_surface;
use crate::{AssociationMap, AttributeRow, SystemPosture};

/// Everything a report needs; build the pieces with the crate's other
/// modules and hand them in (the report never recomputes).
#[derive(Debug)]
pub struct ReportInput<'a> {
    /// The analyzed model.
    pub model: &'a SystemModel,
    /// The corpus the association was computed against.
    pub corpus: &'a Corpus,
    /// The association of attack vectors to components.
    pub association: &'a AssociationMap,
    /// Table 1-style per-attribute rows.
    pub attribute_rows: &'a [AttributeRow],
    /// The computed posture.
    pub posture: &'a SystemPosture,
    /// Simulated consequence records, if any were run.
    pub consequences: &'a [ConsequenceRecord],
}

/// Renders the Markdown report.
///
/// # Examples
///
/// ```
/// # use cpssec_analysis::{report::*, *};
/// # use cpssec_attackdb::seed::seed_corpus;
/// # use cpssec_model::Fidelity;
/// # use cpssec_search::{FilterPipeline, SearchEngine};
/// let corpus = seed_corpus();
/// let engine = SearchEngine::build(&corpus);
/// let model = cpssec_scada::model::scada_model();
/// let filters = FilterPipeline::new();
/// let association =
///     AssociationMap::build(&model, &engine, &corpus, Fidelity::Implementation, &filters);
/// let rows = cpssec_analysis::attribute_rows(
///     &model, &engine, &corpus, Fidelity::Implementation, &filters,
/// );
/// let posture = SystemPosture::compute(&model, &corpus, &association);
/// let markdown = render_report(&ReportInput {
///     model: &model,
///     corpus: &corpus,
///     association: &association,
///     attribute_rows: &rows,
///     posture: &posture,
///     consequences: &[],
/// });
/// assert!(markdown.contains("# Security analysis report"));
/// ```
#[must_use]
pub fn render_report(input: &ReportInput<'_>) -> String {
    let _span = cpssec_obs::span!("render");
    let mut out = String::new();
    let _ = writeln!(out, "# Security analysis report — {}\n", input.model.name());

    // Model summary.
    let stats = input.model.stats();
    let _ = writeln!(out, "## System model\n");
    let _ = writeln!(
        out,
        "- components: {} ({} safety-critical, {} entry points)",
        stats.components, stats.safety_critical, stats.entry_points
    );
    let _ = writeln!(out, "- channels: {}", stats.channels);
    let _ = writeln!(
        out,
        "- attributes: {} (association computed at {} fidelity)\n",
        stats.attributes,
        input.association.fidelity()
    );

    // Association overview.
    let _ = writeln!(out, "## Attack vector association\n");
    let _ = writeln!(
        out,
        "| Component | Patterns | Weaknesses | Vulnerabilities |\n|---|---:|---:|---:|"
    );
    for (component, matches) in input.association.iter() {
        let (p, w, v) = matches.counts();
        let _ = writeln!(out, "| {component} | {p} | {w} | {v} |");
    }
    let _ = writeln!(
        out,
        "\ntotal associated vectors: {}\n",
        input.association.total_vectors()
    );

    // Attribute table.
    if !input.attribute_rows.is_empty() {
        let _ = writeln!(out, "## Per-attribute view\n");
        let _ = writeln!(
            out,
            "| Attribute | Component | Patterns | Weaknesses | Vulnerabilities |\n|---|---|---:|---:|---:|"
        );
        for row in input.attribute_rows {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                row.attribute, row.component, row.patterns, row.weaknesses, row.vulnerabilities
            );
        }
        out.push('\n');
    }

    // Posture.
    let _ = writeln!(out, "## Posture (lower is better)\n");
    let _ = writeln!(
        out,
        "| Component | Criticality | Vectors | Score |\n|---|---|---:|---:|"
    );
    let mut ranked = input.posture.components.clone();
    ranked.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    for component in &ranked {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.1} |",
            component.component,
            component.criticality,
            component.total_vectors(),
            component.score
        );
    }
    let _ = writeln!(out, "\nsystem score: {:.1}\n", input.posture.total_score);

    // Attack surface.
    let surface = attack_surface(input.model, Criticality::SafetyCritical, 6);
    let _ = writeln!(out, "## Attack surface\n");
    let _ = writeln!(out, "- entry points: {}", surface.entry_points.join(", "));
    let _ = writeln!(
        out,
        "- reachable safety-critical components: {}",
        surface.reachable_critical.join(", ")
    );
    if !surface.unreachable_critical.is_empty() {
        let _ = writeln!(
            out,
            "- NOT reachable (verify intent): {}",
            surface.unreachable_critical.join(", ")
        );
    }
    let _ = writeln!(out, "- exposure score: {:.2}", surface.exposure);
    let _ = writeln!(out, "- attack paths (≤6 hops): {}", surface.paths.len());
    for path in surface.paths.iter().take(5) {
        let _ = writeln!(out, "  - {}", path.components.join(" → "));
    }
    out.push('\n');

    // Recommendations for the worst-scoring components.
    let _ = writeln!(out, "## Recommended mitigations\n");
    let mut any = false;
    for component in ranked.iter().take(3) {
        let recs = recommendations_for(input.association, input.corpus, &component.component, 3);
        if recs.is_empty() {
            continue;
        }
        any = true;
        let _ = writeln!(out, "### {}\n", component.component);
        for rec in recs {
            let _ = writeln!(out, "- [{}] {}", rec.weakness, rec.mitigation);
        }
        out.push('\n');
    }
    if !any {
        let _ = writeln!(out, "no matched weakness carries recorded mitigations\n");
    }

    // Consequences.
    if !input.consequences.is_empty() {
        let _ = writeln!(out, "## Simulated consequences\n");
        let _ = writeln!(
            out,
            "| Scenario | Target | Product | SIS trip | Hazards | Losses |\n|---|---|---|---|---|---|"
        );
        for record in input.consequences {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                record.scenario,
                record.target_component,
                record.product,
                if record.emergency_stopped {
                    "yes"
                } else {
                    "no"
                },
                record.hazard_ids.join(", "),
                record.loss_ids.join(", "),
            );
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::seed_corpus;
    use cpssec_model::Fidelity;
    use cpssec_search::{FilterPipeline, SearchEngine};

    fn markdown(consequences: &[ConsequenceRecord]) -> String {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let model = cpssec_scada::model::scada_model();
        let filters = FilterPipeline::new();
        let association =
            AssociationMap::build(&model, &engine, &corpus, Fidelity::Implementation, &filters);
        let rows =
            crate::attribute_rows(&model, &engine, &corpus, Fidelity::Implementation, &filters);
        let posture = SystemPosture::compute(&model, &corpus, &association);
        render_report(&ReportInput {
            model: &model,
            corpus: &corpus,
            association: &association,
            attribute_rows: &rows,
            posture: &posture,
            consequences,
        })
    }

    #[test]
    fn report_contains_every_section() {
        let md = markdown(&[]);
        for heading in [
            "# Security analysis report",
            "## System model",
            "## Attack vector association",
            "## Per-attribute view",
            "## Posture",
            "## Attack surface",
            "## Recommended mitigations",
        ] {
            assert!(md.contains(heading), "missing `{heading}`");
        }
        // No consequence section without records.
        assert!(!md.contains("## Simulated consequences"));
    }

    #[test]
    fn report_lists_table1_attributes_and_paths() {
        let md = markdown(&[]);
        assert!(md.contains("Cisco ASA"));
        assert!(md.contains("Corporate network →"));
        assert!(md.contains("CWE-"));
    }

    #[test]
    fn consequence_section_appears_with_records() {
        let stpa = crate::stpa::centrifuge_analysis();
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let model = cpssec_scada::model::scada_model();
        let association = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        let record = crate::consequence::analyze_scenario(
            &cpssec_scada::attacks::setpoint_tamper(cpssec_sim::Tick::new(100)),
            &association,
            &stpa,
            &cpssec_scada::ScadaConfig::default(),
            4_010,
        );
        let md = markdown(std::slice::from_ref(&record));
        assert!(md.contains("## Simulated consequences"));
        assert!(md.contains("setpoint-tamper"));
        assert!(md.contains("L-1"));
    }

    #[test]
    fn posture_table_is_sorted_worst_first() {
        let md = markdown(&[]);
        let posture_section = md.split("## Posture").nth(1).unwrap();
        let ws_pos = posture_section.find("Programming WS").unwrap();
        let sensor_pos = posture_section.find("Temperature sensor").unwrap();
        assert!(ws_pos < sensor_pos, "workstation scores worse, lists first");
    }
}
