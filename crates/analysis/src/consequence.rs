//! From attack vectors to simulated physical consequences.
//!
//! This module closes the loop the paper says no tool closes: for an
//! attack scenario it (1) checks that the scenario's claimed attack
//! vectors are actually associated with the targeted component by the
//! search process, (2) runs the attack in the plant simulation, and
//! (3) maps the observed hazards and product outcome to losses through the
//! STPA-Sec structure.

use cpssec_model::Fidelity;
use cpssec_scada::{AttackScenario, ProductQuality, ScadaConfig, ScadaHarness};
use cpssec_search::MatchSet;

use crate::stpa::ControlStructureAnalysis;
use crate::AssociationMap;

/// The consequence record of one attack scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsequenceRecord {
    /// Scenario name.
    pub scenario: String,
    /// The model component attacked.
    pub target_component: String,
    /// Weakness ids the scenario claims to instantiate.
    pub claimed_weaknesses: Vec<String>,
    /// The subset of claimed weaknesses that the search process associated
    /// with the target component (design-phase confirmation).
    pub confirmed_weaknesses: Vec<String>,
    /// Pattern ids the scenario claims to instantiate.
    pub claimed_patterns: Vec<String>,
    /// Product quality after the simulated batch.
    pub product: ProductQuality,
    /// Names of the simulation hazard monitors that fired.
    pub hazards: Vec<String>,
    /// STPA hazard ids corresponding to fired monitors plus the product
    /// outcome.
    pub hazard_ids: Vec<String>,
    /// Loss ids reached through the hazards.
    pub loss_ids: Vec<String>,
    /// Whether the SIS/emergency stop engaged.
    pub emergency_stopped: bool,
    /// Whether the solution went unstable.
    pub exploded: bool,
}

impl ConsequenceRecord {
    /// Whether the simulated run ended in any loss.
    #[must_use]
    pub fn has_loss(&self) -> bool {
        !self.loss_ids.is_empty()
    }
}

fn confirmed_weaknesses(set: &MatchSet, claimed: &[String]) -> Vec<String> {
    let matched: Vec<String> = set.weakness_ids().iter().map(ToString::to_string).collect();
    claimed
        .iter()
        .filter(|c| matched.contains(c))
        .cloned()
        .collect()
}

fn product_hazard_ids(product: ProductQuality) -> Vec<String> {
    match product {
        ProductQuality::Nominal => Vec::new(),
        ProductQuality::RuinedSpeed => vec!["H-4".into()],
        ProductQuality::RuinedViscous => vec!["H-5".into()],
        ProductQuality::RuinedUnstable => vec!["H-2".into()],
        // Destruction goes through the monitored hazards (explosion or
        // overspeed), which are added from the fired monitors.
        ProductQuality::Destroyed => Vec::new(),
    }
}

/// Analyzes one scenario: association check + simulation + loss mapping.
///
/// `ticks` must give the scenario enough simulated time to reach its
/// consequence (the built-in scenarios all conclude within 12,000 ticks of
/// the default configuration).
#[must_use]
pub fn analyze_scenario(
    scenario: &AttackScenario,
    association: &AssociationMap,
    stpa: &ControlStructureAnalysis,
    config: &ScadaConfig,
    ticks: u64,
) -> ConsequenceRecord {
    let confirmed = association
        .matches(&scenario.target_component)
        .map(|set| confirmed_weaknesses(set, &scenario.weakness_ids))
        .unwrap_or_default();

    let mut harness = ScadaHarness::with_attack(config.clone(), scenario);
    let report = harness.run_batch_for(ticks);

    let hazards: Vec<String> = report.hazards.iter().map(|h| h.hazard.clone()).collect();
    let mut hazard_ids: Vec<String> = hazards
        .iter()
        .flat_map(|monitor| stpa.hazards_for_monitor(monitor))
        .map(|h| h.id.clone())
        .collect();
    hazard_ids.extend(product_hazard_ids(report.product));
    hazard_ids.sort_unstable();
    hazard_ids.dedup();
    let loss_ids = stpa
        .losses_for_hazards(&hazard_ids)
        .iter()
        .map(|l| l.id.clone())
        .collect();

    ConsequenceRecord {
        scenario: scenario.name.clone(),
        target_component: scenario.target_component.clone(),
        claimed_weaknesses: scenario.weakness_ids.clone(),
        confirmed_weaknesses: confirmed,
        claimed_patterns: scenario.pattern_ids.clone(),
        product: report.product,
        hazards,
        hazard_ids,
        loss_ids,
        emergency_stopped: report.emergency_stopped,
        exploded: report.exploded,
    }
}

/// Analyzes every built-in scenario at implementation fidelity.
#[must_use]
pub fn analyze_all(
    association: &AssociationMap,
    stpa: &ControlStructureAnalysis,
    config: &ScadaConfig,
    ticks: u64,
) -> Vec<ConsequenceRecord> {
    cpssec_scada::attacks::all_scenarios()
        .iter()
        .map(|scenario| analyze_scenario(scenario, association, stpa, config, ticks))
        .collect()
}

/// Convenience: builds the association at `level` from the standard SCADA
/// model and the given corpus/engine, then analyzes every scenario.
#[must_use]
pub fn standard_analysis(
    corpus: &cpssec_attackdb::Corpus,
    engine: &cpssec_search::SearchEngine,
    level: Fidelity,
    ticks: u64,
) -> Vec<ConsequenceRecord> {
    let model = cpssec_scada::model::scada_model();
    let association = AssociationMap::build(
        &model,
        engine,
        corpus,
        level,
        &cpssec_search::FilterPipeline::new(),
    );
    analyze_all(
        &association,
        &crate::stpa::centrifuge_analysis(),
        &ScadaConfig::default(),
        ticks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::seed_corpus;
    use cpssec_scada::attacks;
    use cpssec_search::{FilterPipeline, SearchEngine};
    use cpssec_sim::Tick;

    fn association() -> AssociationMap {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        AssociationMap::build(
            &cpssec_scada::model::scada_model(),
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        )
    }

    #[test]
    fn triton_scenario_reaches_all_three_losses() {
        let record = analyze_scenario(
            &attacks::sis_disable_overtemp(Tick::new(100), Tick::new(1500)),
            &association(),
            &crate::stpa::centrifuge_analysis(),
            &ScadaConfig::default(),
            12_000,
        );
        assert!(record.exploded);
        assert!(record.hazard_ids.contains(&"H-1".to_owned()));
        assert_eq!(record.loss_ids, ["L-1", "L-2", "L-3"]);
        assert!(record.has_loss());
    }

    #[test]
    fn setpoint_tamper_causes_only_product_loss() {
        let record = analyze_scenario(
            &attacks::setpoint_tamper(Tick::new(100)),
            &association(),
            &crate::stpa::centrifuge_analysis(),
            &ScadaConfig::default(),
            4_010,
        );
        assert_eq!(record.product, ProductQuality::RuinedSpeed);
        assert_eq!(record.hazard_ids, ["H-4"]);
        assert_eq!(record.loss_ids, ["L-1"]);
        assert!(!record.exploded);
    }

    #[test]
    fn design_phase_association_confirms_cwe78_on_the_bpcs() {
        // The paper's headline example: CWE-78 proposed for the BPCS/SIS
        // platforms by the search process, then shown consequential.
        let record = analyze_scenario(
            &attacks::command_injection_bpcs(Tick::new(3000)),
            &association(),
            &crate::stpa::centrifuge_analysis(),
            &ScadaConfig::default(),
            4_010,
        );
        assert!(
            record.confirmed_weaknesses.contains(&"CWE-78".to_owned()),
            "association should surface CWE-78 for the BPCS: {:?}",
            record.confirmed_weaknesses
        );
        assert!(record.emergency_stopped);
        assert_eq!(record.loss_ids, ["L-1"]);
    }

    #[test]
    fn all_scenarios_produce_records_with_losses() {
        let records = analyze_all(
            &association(),
            &crate::stpa::centrifuge_analysis(),
            &ScadaConfig::default(),
            12_000,
        );
        assert_eq!(records.len(), attacks::all_scenarios().len());
        // Every built-in attack scenario should end in some loss — that is
        // what makes them attack scenarios.
        for record in &records {
            assert!(record.has_loss(), "{record:?}");
        }
    }

    #[test]
    fn sis_armed_vs_disabled_changes_the_loss_set() {
        let stpa = crate::stpa::centrifuge_analysis();
        let assoc = association();
        let config = ScadaConfig::default();
        let armed = analyze_scenario(
            &attacks::command_injection_bpcs(Tick::new(3000)),
            &assoc,
            &stpa,
            &config,
            4_010,
        );
        let disabled = analyze_scenario(
            &attacks::command_injection_with_sis_disabled(Tick::new(100), Tick::new(3000)),
            &assoc,
            &stpa,
            &config,
            4_010,
        );
        assert_eq!(armed.loss_ids, ["L-1"]);
        assert!(disabled.loss_ids.contains(&"L-2".to_owned()));
        assert!(armed.emergency_stopped);
        assert!(!disabled.emergency_stopped);
    }
}
