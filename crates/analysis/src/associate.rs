//! Association of attack vectors to the system model — the paper's
//! "main output".

use std::collections::BTreeMap;

use cpssec_attackdb::Corpus;
use cpssec_model::{Fidelity, SystemModel};
use cpssec_search::{FilterPipeline, MatchSet, SearchEngine};

/// One row of a Table 1-style report: an attribute value and how many
/// attack vectors of each family associate with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeRow {
    /// The component carrying the attribute.
    pub component: String,
    /// The attribute value queried.
    pub attribute: String,
    /// Matched attack patterns.
    pub patterns: usize,
    /// Matched weaknesses.
    pub weaknesses: usize,
    /// Matched vulnerabilities.
    pub vulnerabilities: usize,
}

impl AttributeRow {
    /// Total matched vectors.
    #[must_use]
    pub fn total(&self) -> usize {
        self.patterns + self.weaknesses + self.vulnerabilities
    }
}

/// The association of attack vectors to every component of a model, at one
/// fidelity level, after one filter pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationMap {
    fidelity: Fidelity,
    by_component: BTreeMap<String, MatchSet>,
    by_channel: BTreeMap<String, MatchSet>,
}

impl AssociationMap {
    /// Associates the corpus to every component of `model` at `level`,
    /// filtering each component's match set through `filters`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cpssec_attackdb::seed::seed_corpus;
    /// use cpssec_search::{FilterPipeline, SearchEngine};
    /// use cpssec_model::Fidelity;
    /// use cpssec_analysis::AssociationMap;
    ///
    /// let corpus = seed_corpus();
    /// let engine = SearchEngine::build(&corpus);
    /// let model = cpssec_scada::model::scada_model();
    /// let map = AssociationMap::build(
    ///     &model, &engine, &corpus, Fidelity::Implementation, &FilterPipeline::new(),
    /// );
    /// assert!(map.matches("SIS platform").is_some());
    /// ```
    #[must_use]
    pub fn build(
        model: &SystemModel,
        engine: &SearchEngine,
        corpus: &Corpus,
        level: Fidelity,
        filters: &FilterPipeline,
    ) -> AssociationMap {
        // The per-element matching fans out across scoped threads; results
        // come back in model insertion order, so the map is deterministic.
        let by_component = engine
            .par_match_model(model, level)
            .into_iter()
            .map(|(name, raw)| (name, filters.apply(&raw, corpus)))
            .collect();
        let by_channel = engine
            .par_match_channels(model, level)
            .into_iter()
            .map(|(id, raw)| {
                let channel = model.channel(id).expect("id from this model");
                let from = model
                    .component(channel.from())
                    .expect("valid endpoint")
                    .name();
                let to = model
                    .component(channel.to())
                    .expect("valid endpoint")
                    .name();
                // Zero-padded so BTreeMap string order equals channel order.
                let key = format!("e{:03}: {from} -- {to} [{}]", id.index(), channel.kind());
                (key, filters.apply(&raw, corpus))
            })
            .collect();
        AssociationMap {
            fidelity: level,
            by_component,
            by_channel,
        }
    }

    /// The fidelity the map was built at.
    #[must_use]
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// The match set for one component name.
    #[must_use]
    pub fn matches(&self, component: &str) -> Option<&MatchSet> {
        self.by_component.get(component)
    }

    /// Iterates `(component name, match set)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MatchSet)> {
        self.by_component.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates `(channel description, match set)` in channel-id order.
    /// Keys look like `e004: BPCS platform -- Centrifuge [fieldbus]`.
    pub fn iter_channels(&self) -> impl Iterator<Item = (&str, &MatchSet)> {
        self.by_channel.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total matched vectors across all components (with multiplicity: a
    /// vector matched by two components counts twice, as on the dashboard).
    /// Channel matches are reported separately by
    /// [`channel_vectors`](Self::channel_vectors).
    #[must_use]
    pub fn total_vectors(&self) -> usize {
        self.by_component.values().map(MatchSet::total).sum()
    }

    /// Total matched vectors across all channels.
    #[must_use]
    pub fn channel_vectors(&self) -> usize {
        self.by_channel.values().map(MatchSet::total).sum()
    }

    /// Components ordered from most to fewest associated vectors.
    #[must_use]
    pub fn ranked_components(&self) -> Vec<(&str, usize)> {
        let mut ranked: Vec<(&str, usize)> = self
            .by_component
            .iter()
            .map(|(name, set)| (name.as_str(), set.total()))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        ranked
    }
}

/// Builds Table 1-style rows: one row per *concrete attribute value* in the
/// model at `level`, each queried individually against the corpus.
///
/// This is exactly how the paper's Table 1 is keyed — by attribute
/// ("Cisco ASA", "Windows 7", …), not by component.
#[must_use]
pub fn attribute_rows(
    model: &SystemModel,
    engine: &SearchEngine,
    corpus: &Corpus,
    level: Fidelity,
    filters: &FilterPipeline,
) -> Vec<AttributeRow> {
    let mut rows = Vec::new();
    for (_, component) in model.components() {
        for attribute in component.attributes().visible_at(level) {
            if !attribute.kind().is_concrete() {
                continue;
            }
            let raw = engine.match_text(attribute.value());
            let set = filters.apply(&raw, corpus);
            let (patterns, weaknesses, vulnerabilities) = set.counts();
            rows.push(AttributeRow {
                component: component.name().to_owned(),
                attribute: attribute.value().to_owned(),
                patterns,
                weaknesses,
                vulnerabilities,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::seed_corpus;
    use cpssec_scada::model::{names, scada_model};

    fn setup() -> (SystemModel, SearchEngine, Corpus) {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        (scada_model(), engine, corpus)
    }

    #[test]
    fn every_component_gets_an_entry() {
        let (model, engine, corpus) = setup();
        let map = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        assert_eq!(map.iter().count(), model.component_count());
        assert_eq!(map.fidelity(), Fidelity::Implementation);
    }

    #[test]
    fn implementation_fidelity_matches_more_than_conceptual() {
        let (model, engine, corpus) = setup();
        let filters = FilterPipeline::new();
        let concrete =
            AssociationMap::build(&model, &engine, &corpus, Fidelity::Implementation, &filters);
        let abstract_ =
            AssociationMap::build(&model, &engine, &corpus, Fidelity::Conceptual, &filters);
        assert!(
            concrete.total_vectors() > abstract_.total_vectors(),
            "concrete {} vs abstract {}",
            concrete.total_vectors(),
            abstract_.total_vectors()
        );
    }

    #[test]
    fn sis_platform_matches_vulnerabilities_at_implementation() {
        let (model, engine, corpus) = setup();
        let map = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        let sis = map.matches(names::SIS).unwrap();
        assert!(!sis.vulnerabilities.is_empty());
    }

    #[test]
    fn attribute_rows_cover_table1_attributes() {
        let (model, engine, corpus) = setup();
        let rows = attribute_rows(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        for needle in [
            "Cisco ASA",
            "Windows 7",
            "Labview",
            "NI cRIO 9063",
            "NI cRIO 9064",
            "NI RT Linux OS",
        ] {
            let row = rows
                .iter()
                .find(|r| r.attribute == needle)
                .unwrap_or_else(|| panic!("no row for {needle}"));
            assert!(row.vulnerabilities > 0, "{needle}: {row:?}");
        }
    }

    #[test]
    fn attribute_rows_skip_function_attributes() {
        let (model, engine, corpus) = setup();
        let rows = attribute_rows(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        assert!(rows.iter().all(|r| !r.attribute.contains("monitors")));
    }

    #[test]
    fn conceptual_rows_exclude_implementation_attributes() {
        let (model, engine, corpus) = setup();
        let rows = attribute_rows(
            &model,
            &engine,
            &corpus,
            Fidelity::Conceptual,
            &FilterPipeline::new(),
        );
        assert!(rows.iter().all(|r| r.attribute != "Windows 7"));
    }

    #[test]
    fn ranked_components_sorts_descending() {
        let (model, engine, corpus) = setup();
        let map = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        let ranked = map.ranked_components();
        assert_eq!(ranked.len(), model.component_count());
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn filters_thin_the_association() {
        use cpssec_attackdb::Severity;
        use cpssec_search::Filter;
        let (model, engine, corpus) = setup();
        let unfiltered = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        let filtered = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new().then(Filter::SeverityAtLeast(Severity::Critical)),
        );
        assert!(filtered.total_vectors() < unfiltered.total_vectors());
    }

    #[test]
    fn channels_are_associated_too() {
        let (model, engine, corpus) = setup();
        let map = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Architectural,
            &FilterPipeline::new(),
        );
        assert_eq!(map.iter_channels().count(), model.channel_count());
        // The MODBUS fieldbus channels match the MODBUS-mentioning records.
        let modbus_channel = map
            .iter_channels()
            .find(|(key, _)| key.contains("Centrifuge"))
            .map(|(_, set)| set.clone())
            .expect("drive command bus present");
        assert!(
            modbus_channel.total() > 0,
            "MODBUS channel should match protocol-level records"
        );
        assert!(map.channel_vectors() >= modbus_channel.total());
    }

    #[test]
    fn channel_keys_are_ordered_and_descriptive() {
        let (model, engine, corpus) = setup();
        let map = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        let keys: Vec<&str> = map.iter_channels().map(|(k, _)| k).collect();
        assert!(keys[0].starts_with("e000:"));
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(keys.iter().any(|k| k.contains("[fieldbus]")));
    }

    #[test]
    fn row_total_sums_families() {
        let row = AttributeRow {
            component: "x".into(),
            attribute: "y".into(),
            patterns: 1,
            weaknesses: 2,
            vulnerabilities: 3,
        };
        assert_eq!(row.total(), 6);
    }
}
