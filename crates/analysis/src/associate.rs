//! Association of attack vectors to the system model — the paper's
//! "main output".

use std::collections::{BTreeMap, BTreeSet};

use cpssec_attackdb::Corpus;
use cpssec_model::{fnv1a_64, Fidelity, ModelDiff, SystemModel};
use cpssec_search::{FilterPipeline, MatchSet, SearchEngine};

/// One row of a Table 1-style report: an attribute value and how many
/// attack vectors of each family associate with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeRow {
    /// The component carrying the attribute.
    pub component: String,
    /// The attribute value queried.
    pub attribute: String,
    /// Matched attack patterns.
    pub patterns: usize,
    /// Matched weaknesses.
    pub weaknesses: usize,
    /// Matched vulnerabilities.
    pub vulnerabilities: usize,
}

impl AttributeRow {
    /// Total matched vectors.
    #[must_use]
    pub fn total(&self) -> usize {
        self.patterns + self.weaknesses + self.vulnerabilities
    }
}

/// The association of attack vectors to every component of a model, at one
/// fidelity level, after one filter pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationMap {
    fidelity: Fidelity,
    by_component: BTreeMap<String, MatchSet>,
    by_channel: BTreeMap<String, MatchSet>,
}

impl AssociationMap {
    /// Associates the corpus to every component of `model` at `level`,
    /// filtering each component's match set through `filters`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cpssec_attackdb::seed::seed_corpus;
    /// use cpssec_search::{FilterPipeline, SearchEngine};
    /// use cpssec_model::Fidelity;
    /// use cpssec_analysis::AssociationMap;
    ///
    /// let corpus = seed_corpus();
    /// let engine = SearchEngine::build(&corpus);
    /// let model = cpssec_scada::model::scada_model();
    /// let map = AssociationMap::build(
    ///     &model, &engine, &corpus, Fidelity::Implementation, &FilterPipeline::new(),
    /// );
    /// assert!(map.matches("SIS platform").is_some());
    /// ```
    #[must_use]
    pub fn build(
        model: &SystemModel,
        engine: &SearchEngine,
        corpus: &Corpus,
        level: Fidelity,
        filters: &FilterPipeline,
    ) -> AssociationMap {
        let mut span = cpssec_obs::span!("associate");
        span.add_items(model.component_count() as u64);
        // The per-element matching fans out across scoped threads; results
        // come back in model insertion order, so the map is deterministic.
        let by_component = engine
            .par_match_model(model, level)
            .into_iter()
            .map(|(name, raw)| (name, filters.apply(&raw, corpus)))
            .collect();
        AssociationMap {
            fidelity: level,
            by_component,
            by_channel: build_channels(model, engine, corpus, level, filters),
        }
    }

    /// Incrementally re-associates after a model edit, reusing `prior`.
    ///
    /// Per-element matching is a pure function of the element's query text
    /// (given one engine, corpus snapshot, and filter pipeline), so only
    /// components whose text at the prior's fidelity actually changed are
    /// re-queried; every other entry is spliced from `prior`. Channels are
    /// spliced wholesale when the channel lists and component name order
    /// are unchanged (the usual what-if case of attribute edits), and
    /// rebuilt otherwise.
    ///
    /// # Contract
    ///
    /// `prior` must have been built from `old` with the same `engine`,
    /// `corpus`, and `filters`, and `diff` must be
    /// `ModelDiff::between(old, new)`. Under that contract the result is
    /// exactly `AssociationMap::build(new, engine, corpus,
    /// prior.fidelity(), filters)` — bit-identical scores and order.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn rebuild(
        prior: &AssociationMap,
        old: &SystemModel,
        new: &SystemModel,
        diff: &ModelDiff,
        engine: &SearchEngine,
        corpus: &Corpus,
        filters: &FilterPipeline,
    ) -> AssociationMap {
        let _span = cpssec_obs::span!("associate-rebuild");
        let level = prior.fidelity;
        // Names whose query text may differ: the diff narrows the candidate
        // set, the text hash decides (an attribute edit at another fidelity
        // level is invisible to this map and splices through).
        let mut requery: BTreeSet<&str> =
            diff.added_components.iter().map(String::as_str).collect();
        for change in &diff.changed_components {
            let unchanged_text = old
                .component_by_name(&change.name)
                .zip(new.component_by_name(&change.name))
                .is_some_and(|(oc, nc)| {
                    fnv1a_64(oc.search_text(level).as_bytes())
                        == fnv1a_64(nc.search_text(level).as_bytes())
                });
            if !unchanged_text {
                requery.insert(&change.name);
            }
        }
        let by_component = new
            .components()
            .map(|(_, component)| {
                let name = component.name();
                let set = match prior.by_component.get(name) {
                    Some(prior_set) if !requery.contains(name) => prior_set.clone(),
                    _ => filters.apply(&engine.match_component(component, level), corpus),
                };
                (name.to_owned(), set)
            })
            .collect();
        let same_names = old
            .components()
            .map(|(_, c)| c.name())
            .eq(new.components().map(|(_, c)| c.name()));
        let same_channels = same_names && old.channels().eq(new.channels());
        let by_channel = if same_channels {
            prior.by_channel.clone()
        } else {
            build_channels(new, engine, corpus, level, filters)
        };
        AssociationMap {
            fidelity: level,
            by_component,
            by_channel,
        }
    }

    /// The fidelity the map was built at.
    #[must_use]
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// The match set for one component name.
    #[must_use]
    pub fn matches(&self, component: &str) -> Option<&MatchSet> {
        self.by_component.get(component)
    }

    /// Iterates `(component name, match set)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MatchSet)> {
        self.by_component.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates `(channel description, match set)` in channel-id order.
    /// Keys look like `e004: BPCS platform -- Centrifuge [fieldbus]`.
    pub fn iter_channels(&self) -> impl Iterator<Item = (&str, &MatchSet)> {
        self.by_channel.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total matched vectors across all components (with multiplicity: a
    /// vector matched by two components counts twice, as on the dashboard).
    /// Channel matches are reported separately by
    /// [`channel_vectors`](Self::channel_vectors).
    #[must_use]
    pub fn total_vectors(&self) -> usize {
        self.by_component.values().map(MatchSet::total).sum()
    }

    /// Total matched vectors across all channels.
    #[must_use]
    pub fn channel_vectors(&self) -> usize {
        self.by_channel.values().map(MatchSet::total).sum()
    }

    /// Components ordered from most to fewest associated vectors.
    #[must_use]
    pub fn ranked_components(&self) -> Vec<(&str, usize)> {
        let mut ranked: Vec<(&str, usize)> = self
            .by_component
            .iter()
            .map(|(name, set)| (name.as_str(), set.total()))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        ranked
    }
}

/// Associates every channel of `model`, keyed so BTreeMap string order
/// equals channel order (zero-padded ids).
fn build_channels(
    model: &SystemModel,
    engine: &SearchEngine,
    corpus: &Corpus,
    level: Fidelity,
    filters: &FilterPipeline,
) -> BTreeMap<String, MatchSet> {
    engine
        .par_match_channels(model, level)
        .into_iter()
        .map(|(id, raw)| {
            let channel = model.channel(id).expect("id from this model");
            let from = model
                .component(channel.from())
                .expect("valid endpoint")
                .name();
            let to = model
                .component(channel.to())
                .expect("valid endpoint")
                .name();
            let key = format!("e{:03}: {from} -- {to} [{}]", id.index(), channel.kind());
            (key, filters.apply(&raw, corpus))
        })
        .collect()
}

/// Builds Table 1-style rows: one row per *concrete attribute value* in the
/// model at `level`, each queried individually against the corpus.
///
/// This is exactly how the paper's Table 1 is keyed — by attribute
/// ("Cisco ASA", "Windows 7", …), not by component.
#[must_use]
pub fn attribute_rows(
    model: &SystemModel,
    engine: &SearchEngine,
    corpus: &Corpus,
    level: Fidelity,
    filters: &FilterPipeline,
) -> Vec<AttributeRow> {
    let mut rows = Vec::new();
    for (_, component) in model.components() {
        for attribute in component.attributes().visible_at(level) {
            if !attribute.kind().is_concrete() {
                continue;
            }
            let raw = engine.match_text(attribute.value());
            let set = filters.apply(&raw, corpus);
            let (patterns, weaknesses, vulnerabilities) = set.counts();
            rows.push(AttributeRow {
                component: component.name().to_owned(),
                attribute: attribute.value().to_owned(),
                patterns,
                weaknesses,
                vulnerabilities,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::seed_corpus;
    use cpssec_scada::model::{names, scada_model};

    fn setup() -> (SystemModel, SearchEngine, Corpus) {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        (scada_model(), engine, corpus)
    }

    #[test]
    fn every_component_gets_an_entry() {
        let (model, engine, corpus) = setup();
        let map = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        assert_eq!(map.iter().count(), model.component_count());
        assert_eq!(map.fidelity(), Fidelity::Implementation);
    }

    #[test]
    fn implementation_fidelity_matches_more_than_conceptual() {
        let (model, engine, corpus) = setup();
        let filters = FilterPipeline::new();
        let concrete =
            AssociationMap::build(&model, &engine, &corpus, Fidelity::Implementation, &filters);
        let abstract_ =
            AssociationMap::build(&model, &engine, &corpus, Fidelity::Conceptual, &filters);
        assert!(
            concrete.total_vectors() > abstract_.total_vectors(),
            "concrete {} vs abstract {}",
            concrete.total_vectors(),
            abstract_.total_vectors()
        );
    }

    #[test]
    fn sis_platform_matches_vulnerabilities_at_implementation() {
        let (model, engine, corpus) = setup();
        let map = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        let sis = map.matches(names::SIS).unwrap();
        assert!(!sis.vulnerabilities.is_empty());
    }

    #[test]
    fn attribute_rows_cover_table1_attributes() {
        let (model, engine, corpus) = setup();
        let rows = attribute_rows(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        for needle in [
            "Cisco ASA",
            "Windows 7",
            "Labview",
            "NI cRIO 9063",
            "NI cRIO 9064",
            "NI RT Linux OS",
        ] {
            let row = rows
                .iter()
                .find(|r| r.attribute == needle)
                .unwrap_or_else(|| panic!("no row for {needle}"));
            assert!(row.vulnerabilities > 0, "{needle}: {row:?}");
        }
    }

    #[test]
    fn attribute_rows_skip_function_attributes() {
        let (model, engine, corpus) = setup();
        let rows = attribute_rows(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        assert!(rows.iter().all(|r| !r.attribute.contains("monitors")));
    }

    #[test]
    fn conceptual_rows_exclude_implementation_attributes() {
        let (model, engine, corpus) = setup();
        let rows = attribute_rows(
            &model,
            &engine,
            &corpus,
            Fidelity::Conceptual,
            &FilterPipeline::new(),
        );
        assert!(rows.iter().all(|r| r.attribute != "Windows 7"));
    }

    #[test]
    fn ranked_components_sorts_descending() {
        let (model, engine, corpus) = setup();
        let map = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        let ranked = map.ranked_components();
        assert_eq!(ranked.len(), model.component_count());
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn filters_thin_the_association() {
        use cpssec_attackdb::Severity;
        use cpssec_search::Filter;
        let (model, engine, corpus) = setup();
        let unfiltered = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        let filtered = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new().then(Filter::SeverityAtLeast(Severity::Critical)),
        );
        assert!(filtered.total_vectors() < unfiltered.total_vectors());
    }

    #[test]
    fn channels_are_associated_too() {
        let (model, engine, corpus) = setup();
        let map = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Architectural,
            &FilterPipeline::new(),
        );
        assert_eq!(map.iter_channels().count(), model.channel_count());
        // The MODBUS fieldbus channels match the MODBUS-mentioning records.
        let modbus_channel = map
            .iter_channels()
            .find(|(key, _)| key.contains("Centrifuge"))
            .map(|(_, set)| set.clone())
            .expect("drive command bus present");
        assert!(
            modbus_channel.total() > 0,
            "MODBUS channel should match protocol-level records"
        );
        assert!(map.channel_vectors() >= modbus_channel.total());
    }

    #[test]
    fn channel_keys_are_ordered_and_descriptive() {
        let (model, engine, corpus) = setup();
        let map = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        let keys: Vec<&str> = map.iter_channels().map(|(k, _)| k).collect();
        assert!(keys[0].starts_with("e000:"));
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(keys.iter().any(|k| k.contains("[fieldbus]")));
    }

    fn swap_workstation_os(model: &SystemModel) -> SystemModel {
        let mut edited = model.clone();
        let ws = edited.component_by_name_mut(names::WORKSTATION).unwrap();
        let old_values: Vec<String> = ws.attributes().get_all("os").map(str::to_owned).collect();
        for value in old_values {
            ws.attributes_mut().remove("os", &value);
        }
        ws.attributes_mut().insert(
            cpssec_model::Attribute::new(
                cpssec_model::AttributeKind::OperatingSystem,
                "hardened thin client image",
            )
            .at_fidelity(Fidelity::Implementation),
        );
        edited
    }

    #[test]
    fn incremental_rebuild_equals_full_rebuild() {
        let (model, engine, corpus) = setup();
        let filters = FilterPipeline::new();
        let prior =
            AssociationMap::build(&model, &engine, &corpus, Fidelity::Implementation, &filters);
        let edited = swap_workstation_os(&model);
        let diff = cpssec_model::ModelDiff::between(&model, &edited);
        let incremental =
            AssociationMap::rebuild(&prior, &model, &edited, &diff, &engine, &corpus, &filters);
        let full = AssociationMap::build(
            &edited,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &filters,
        );
        assert_eq!(incremental, full);
    }

    #[test]
    fn incremental_rebuild_requeries_only_the_changed_component() {
        let (model, engine, corpus) = setup();
        let filters = FilterPipeline::new();
        let prior =
            AssociationMap::build(&model, &engine, &corpus, Fidelity::Implementation, &filters);
        let edited = swap_workstation_os(&model);
        let diff = cpssec_model::ModelDiff::between(&model, &edited);
        let before = engine.queries_run();
        let _ = AssociationMap::rebuild(&prior, &model, &edited, &diff, &engine, &corpus, &filters);
        assert_eq!(
            engine.queries_run() - before,
            1,
            "exactly one component re-queried, all channels spliced"
        );
    }

    #[test]
    fn edits_invisible_at_the_map_fidelity_splice_through() {
        let (model, engine, corpus) = setup();
        let filters = FilterPipeline::new();
        // A conceptual-level map must not re-query for an implementation-
        // only attribute swap: the query text is unchanged at that level.
        let prior = AssociationMap::build(&model, &engine, &corpus, Fidelity::Conceptual, &filters);
        let edited = swap_workstation_os(&model);
        let diff = cpssec_model::ModelDiff::between(&model, &edited);
        let before = engine.queries_run();
        let incremental =
            AssociationMap::rebuild(&prior, &model, &edited, &diff, &engine, &corpus, &filters);
        assert_eq!(engine.queries_run(), before, "no re-queries needed");
        assert_eq!(
            incremental,
            AssociationMap::build(&edited, &engine, &corpus, Fidelity::Conceptual, &filters)
        );
    }

    #[test]
    fn incremental_rebuild_handles_component_add_and_remove() {
        let (model, engine, corpus) = setup();
        let filters = FilterPipeline::new();
        let prior =
            AssociationMap::build(&model, &engine, &corpus, Fidelity::Implementation, &filters);
        // Removing a component drops its channels; adding one brings a new
        // entry. Both invalidate the channel splice path.
        let mut edited = model.clone();
        edited
            .add_component(cpssec_model::Component::new(
                "New historian",
                cpssec_model::ComponentKind::Historian,
            ))
            .unwrap();
        let diff = cpssec_model::ModelDiff::between(&model, &edited);
        let incremental =
            AssociationMap::rebuild(&prior, &model, &edited, &diff, &engine, &corpus, &filters);
        let full = AssociationMap::build(
            &edited,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &filters,
        );
        assert_eq!(incremental, full);
        assert!(incremental.matches("New historian").is_some());
    }

    #[test]
    fn row_total_sums_families() {
        let row = AttributeRow {
            component: "x".into(),
            attribute: "y".into(),
            patterns: 1,
            weaknesses: 2,
            vulnerabilities: 3,
        };
        assert_eq!(row.total(), 6);
    }
}
