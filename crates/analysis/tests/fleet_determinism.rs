//! Fleet determinism at smoke scale: a 200-scenario campaign produces
//! identical records — and therefore an identical aggregate hash — at
//! any thread count, every scenario replays standalone bit-for-bit, and
//! the campaign actually finds hazards.

use cpssec_analysis::{aggregate, aggregate_hash};
use cpssec_scada::{run_campaign, run_scenario, AttackClass, CampaignSpec};

fn smoke_spec(threads: usize) -> CampaignSpec {
    let mut spec = CampaignSpec::new(200, 0xD15EA5E);
    spec.max_ticks = 2500;
    spec.threads = threads;
    spec
}

#[test]
fn two_hundred_scenarios_are_thread_count_invariant() {
    let parallel = run_campaign(&smoke_spec(4));
    let serial = run_campaign(&smoke_spec(1));
    assert_eq!(parallel.len(), 200);
    assert_eq!(
        parallel, serial,
        "thread count must never change the records"
    );
    assert_eq!(aggregate_hash(&parallel), aggregate_hash(&serial));

    // Scenario i standalone == scenario i in-fleet, across the range.
    let spec = smoke_spec(4);
    for index in [0, 31, 99, 150, 199] {
        assert_eq!(parallel[index as usize], run_scenario(&spec, index));
    }

    // The smoke fleet is statistically alive: hazards fired, every class
    // got sampled, and the nominal class stayed clean.
    let agg = aggregate(&parallel);
    assert!(agg.hazards > 0, "200 scenarios must include hazards");
    assert_eq!(agg.per_class.len(), AttackClass::ALL.len());
    let by_class: u64 = agg.per_class.iter().map(|c| c.scenarios).sum();
    assert_eq!(by_class, 200);
    let nominal = agg
        .per_class
        .iter()
        .find(|c| c.class == AttackClass::Nominal)
        .expect("nominal sampled");
    assert_eq!(nominal.hazards, 0);
    // SIS-disabled overspeed injections reach the hazard quickly, so the
    // overall time-to-hazard distribution is populated.
    assert_eq!(agg.time_to_hazard.count, agg.hazards);
}

#[test]
fn aggregate_hash_is_reproducible_across_runs() {
    let first = aggregate_hash(&run_campaign(&smoke_spec(2)));
    let second = aggregate_hash(&run_campaign(&smoke_spec(3)));
    assert_eq!(first, second, "same campaign seed, same statistics");
}
