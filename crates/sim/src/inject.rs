//! Message-level attack injection.
//!
//! Injectors sit between the firewall and the destination device — the
//! position of an adversary with a foothold on the control network. They
//! can drop requests, rewrite them in flight, and forge responses; each is
//! active only inside its [`TickWindow`], so scenarios can stage intrusion,
//! persistence, and effect phases.

use crate::{BusRequest, BusResponse, Tick, UnitId};

/// What an injector decided for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver (possibly after in-place modification).
    Deliver,
    /// Drop silently.
    Drop,
}

/// A half-open activity window in ticks; `end = None` means "forever".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickWindow {
    /// First active tick.
    pub start: Tick,
    /// First tick no longer active, or `None` for unbounded.
    pub end: Option<Tick>,
}

impl TickWindow {
    /// A window active from `start` on.
    #[must_use]
    pub fn from(start: Tick) -> Self {
        TickWindow { start, end: None }
    }

    /// A window active in `[start, end)`.
    #[must_use]
    pub fn between(start: Tick, end: Tick) -> Self {
        TickWindow {
            start,
            end: Some(end),
        }
    }

    /// A window active at every tick.
    #[must_use]
    pub fn always() -> Self {
        TickWindow::from(Tick::ZERO)
    }

    /// Whether `now` falls inside the window.
    #[must_use]
    pub fn contains(&self, now: Tick) -> bool {
        now >= self.start && self.end.map_or(true, |e| now < e)
    }
}

/// An adversary capability on the bus.
pub trait Injector {
    /// A short name used in the bus log and reports.
    fn name(&self) -> &str;

    /// Inspects (and may rewrite) a request in flight; returning
    /// [`Verdict::Drop`] suppresses delivery. The default passes everything.
    fn intercept_request(&mut self, now: Tick, request: &mut BusRequest) -> Verdict {
        let _ = (now, request);
        Verdict::Deliver
    }

    /// Inspects (and may rewrite) a response on the way back. The default
    /// passes it unchanged.
    fn intercept_response(&mut self, now: Tick, request: &BusRequest, response: &mut BusResponse) {
        let _ = (now, request, response);
    }
}

/// Drops requests matching a destination (and optionally writes only) —
/// a targeted denial of service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropMatching {
    name: String,
    window: TickWindow,
    dst: Option<UnitId>,
    writes_only: bool,
}

impl DropMatching {
    /// Drops every request to `dst` during `window`.
    #[must_use]
    pub fn new(name: impl Into<String>, window: TickWindow, dst: Option<UnitId>) -> Self {
        DropMatching {
            name: name.into(),
            window,
            dst,
            writes_only: false,
        }
    }

    /// Restricts the drop to write requests (builder style).
    #[must_use]
    pub fn writes_only(mut self) -> Self {
        self.writes_only = true;
        self
    }
}

impl Injector for DropMatching {
    fn name(&self) -> &str {
        &self.name
    }

    fn intercept_request(&mut self, now: Tick, request: &mut BusRequest) -> Verdict {
        let applies = self.window.contains(now)
            && self.dst.map_or(true, |d| d == request.dst)
            && (!self.writes_only || request.function.is_write());
        if applies {
            Verdict::Drop
        } else {
            Verdict::Deliver
        }
    }
}

/// Rewrites the value of write requests hitting one register — the bus-level
/// shape of a command injection that forces an output or setpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterOverride {
    name: String,
    window: TickWindow,
    dst: UnitId,
    address: u16,
    forced_value: u16,
}

impl RegisterOverride {
    /// Forces writes to `(dst, address)` to carry `forced_value` during
    /// `window`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        window: TickWindow,
        dst: UnitId,
        address: u16,
        forced_value: u16,
    ) -> Self {
        RegisterOverride {
            name: name.into(),
            window,
            dst,
            address,
            forced_value,
        }
    }
}

impl Injector for RegisterOverride {
    fn name(&self) -> &str {
        &self.name
    }

    fn intercept_request(&mut self, now: Tick, request: &mut BusRequest) -> Verdict {
        if self.window.contains(now)
            && request.dst == self.dst
            && request.function.is_write()
            && request.address == self.address
        {
            for value in &mut request.values {
                *value = self.forced_value;
            }
        }
        Verdict::Deliver
    }
}

/// Rewrites read responses from one register — sensor spoofing as seen by
/// every consumer of that register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseOverride {
    name: String,
    window: TickWindow,
    dst: UnitId,
    address: u16,
    forged_value: u16,
}

impl ResponseOverride {
    /// Forges reads of `(dst, address)` to return `forged_value` during
    /// `window`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        window: TickWindow,
        dst: UnitId,
        address: u16,
        forged_value: u16,
    ) -> Self {
        ResponseOverride {
            name: name.into(),
            window,
            dst,
            address,
            forged_value,
        }
    }
}

impl Injector for ResponseOverride {
    fn name(&self) -> &str {
        &self.name
    }

    fn intercept_response(&mut self, now: Tick, request: &BusRequest, response: &mut BusResponse) {
        if self.window.contains(now)
            && request.dst == self.dst
            && !request.function.is_write()
            && request.address == self.address
        {
            if let BusResponse::Ok(values) = response {
                for value in values {
                    *value = self.forged_value;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> BusRequest {
        BusRequest::write(UnitId::new(1), UnitId::new(2), 40, 100)
    }

    #[test]
    fn window_contains_is_half_open() {
        let w = TickWindow::between(Tick::new(5), Tick::new(10));
        assert!(!w.contains(Tick::new(4)));
        assert!(w.contains(Tick::new(5)));
        assert!(w.contains(Tick::new(9)));
        assert!(!w.contains(Tick::new(10)));
        assert!(TickWindow::always().contains(Tick::ZERO));
        assert!(TickWindow::from(Tick::new(3)).contains(Tick::new(1_000_000)));
    }

    #[test]
    fn drop_matching_respects_window_and_dst() {
        let mut inj = DropMatching::new(
            "dos",
            TickWindow::between(Tick::new(1), Tick::new(2)),
            Some(UnitId::new(2)),
        );
        let mut r = req();
        assert_eq!(
            inj.intercept_request(Tick::new(0), &mut r),
            Verdict::Deliver
        );
        assert_eq!(inj.intercept_request(Tick::new(1), &mut r), Verdict::Drop);
        let mut other = BusRequest::write(UnitId::new(1), UnitId::new(9), 40, 1);
        assert_eq!(
            inj.intercept_request(Tick::new(1), &mut other),
            Verdict::Deliver
        );
    }

    #[test]
    fn drop_matching_writes_only_passes_reads() {
        let mut inj =
            DropMatching::new("dos", TickWindow::always(), Some(UnitId::new(2))).writes_only();
        let mut read = BusRequest::read(UnitId::new(1), UnitId::new(2), 0, 1);
        assert_eq!(
            inj.intercept_request(Tick::ZERO, &mut read),
            Verdict::Deliver
        );
        let mut write = req();
        assert_eq!(inj.intercept_request(Tick::ZERO, &mut write), Verdict::Drop);
    }

    #[test]
    fn register_override_rewrites_matching_write() {
        let mut inj =
            RegisterOverride::new("cmd-inject", TickWindow::always(), UnitId::new(2), 40, 9999);
        let mut r = req();
        assert_eq!(inj.intercept_request(Tick::ZERO, &mut r), Verdict::Deliver);
        assert_eq!(r.values, vec![9999]);
        // Different address untouched.
        let mut other = BusRequest::write(UnitId::new(1), UnitId::new(2), 41, 100);
        inj.intercept_request(Tick::ZERO, &mut other);
        assert_eq!(other.values, vec![100]);
    }

    #[test]
    fn response_override_spoofs_reads_only() {
        let mut inj = ResponseOverride::new("spoof", TickWindow::always(), UnitId::new(2), 7, 123);
        let read = BusRequest::read(UnitId::new(1), UnitId::new(2), 7, 1);
        let mut resp = BusResponse::ok(vec![55]);
        inj.intercept_response(Tick::ZERO, &read, &mut resp);
        assert_eq!(resp.values(), Some(&[123u16][..]));
        // Writes pass through.
        let write = req();
        let mut wresp = BusResponse::ok(vec![55]);
        inj.intercept_response(Tick::ZERO, &write, &mut wresp);
        assert_eq!(wresp.values(), Some(&[55u16][..]));
        // Exceptions untouched.
        let mut exc = BusResponse::exception(crate::ExceptionCode::DeviceFailure);
        inj.intercept_response(Tick::ZERO, &read, &mut exc);
        assert!(!exc.is_ok());
    }
}
