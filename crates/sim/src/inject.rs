//! Message-level attack injection.
//!
//! Injectors sit between the firewall and the destination device — the
//! position of an adversary with a foothold on the control network. They
//! can drop requests, rewrite them in flight, and forge responses; each is
//! active only inside its [`TickWindow`], so scenarios can stage intrusion,
//! persistence, and effect phases.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use crate::{BusRequest, BusResponse, Tick, UnitId};

/// What an injector decided for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver (possibly after in-place modification).
    Deliver,
    /// Drop silently.
    Drop,
}

/// A half-open activity window in ticks; `end = None` means "forever".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickWindow {
    /// First active tick.
    pub start: Tick,
    /// First tick no longer active, or `None` for unbounded.
    pub end: Option<Tick>,
}

impl TickWindow {
    /// A window active from `start` on.
    #[must_use]
    pub fn from(start: Tick) -> Self {
        TickWindow { start, end: None }
    }

    /// A window active in `[start, end)`.
    #[must_use]
    pub fn between(start: Tick, end: Tick) -> Self {
        TickWindow {
            start,
            end: Some(end),
        }
    }

    /// A window active at every tick.
    #[must_use]
    pub fn always() -> Self {
        TickWindow::from(Tick::ZERO)
    }

    /// Whether `now` falls inside the window.
    #[must_use]
    pub fn contains(&self, now: Tick) -> bool {
        now >= self.start && self.end.map_or(true, |e| now < e)
    }
}

/// An adversary capability on the bus.
pub trait Injector {
    /// A short name used in the bus log and reports.
    fn name(&self) -> &str;

    /// Inspects (and may rewrite) a request in flight; returning
    /// [`Verdict::Drop`] suppresses delivery. The default passes everything.
    fn intercept_request(&mut self, now: Tick, request: &mut BusRequest) -> Verdict {
        let _ = (now, request);
        Verdict::Deliver
    }

    /// Inspects (and may rewrite) a response on the way back. The default
    /// passes it unchanged.
    fn intercept_response(&mut self, now: Tick, request: &BusRequest, response: &mut BusResponse) {
        let _ = (now, request, response);
    }
}

/// Drops requests matching a destination (and optionally writes only) —
/// a targeted denial of service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropMatching {
    name: String,
    window: TickWindow,
    dst: Option<UnitId>,
    writes_only: bool,
}

impl DropMatching {
    /// Drops every request to `dst` during `window`.
    #[must_use]
    pub fn new(name: impl Into<String>, window: TickWindow, dst: Option<UnitId>) -> Self {
        DropMatching {
            name: name.into(),
            window,
            dst,
            writes_only: false,
        }
    }

    /// Restricts the drop to write requests (builder style).
    #[must_use]
    pub fn writes_only(mut self) -> Self {
        self.writes_only = true;
        self
    }
}

impl Injector for DropMatching {
    fn name(&self) -> &str {
        &self.name
    }

    fn intercept_request(&mut self, now: Tick, request: &mut BusRequest) -> Verdict {
        let applies = self.window.contains(now)
            && self.dst.map_or(true, |d| d == request.dst)
            && (!self.writes_only || request.function.is_write());
        if applies {
            Verdict::Drop
        } else {
            Verdict::Deliver
        }
    }
}

/// Rewrites the value of write requests hitting one register — the bus-level
/// shape of a command injection that forces an output or setpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterOverride {
    name: String,
    window: TickWindow,
    dst: UnitId,
    address: u16,
    forced_value: u16,
}

impl RegisterOverride {
    /// Forces writes to `(dst, address)` to carry `forced_value` during
    /// `window`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        window: TickWindow,
        dst: UnitId,
        address: u16,
        forced_value: u16,
    ) -> Self {
        RegisterOverride {
            name: name.into(),
            window,
            dst,
            address,
            forced_value,
        }
    }
}

impl Injector for RegisterOverride {
    fn name(&self) -> &str {
        &self.name
    }

    fn intercept_request(&mut self, now: Tick, request: &mut BusRequest) -> Verdict {
        if self.window.contains(now)
            && request.dst == self.dst
            && request.function.is_write()
            && request.address == self.address
        {
            for value in &mut request.values {
                *value = self.forced_value;
            }
        }
        Verdict::Deliver
    }
}

/// Rewrites read responses from one register — sensor spoofing as seen by
/// every consumer of that register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseOverride {
    name: String,
    window: TickWindow,
    dst: UnitId,
    address: u16,
    forged_value: u16,
}

impl ResponseOverride {
    /// Forges reads of `(dst, address)` to return `forged_value` during
    /// `window`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        window: TickWindow,
        dst: UnitId,
        address: u16,
        forged_value: u16,
    ) -> Self {
        ResponseOverride {
            name: name.into(),
            window,
            dst,
            address,
            forged_value,
        }
    }
}

impl Injector for ResponseOverride {
    fn name(&self) -> &str {
        &self.name
    }

    fn intercept_response(&mut self, now: Tick, request: &BusRequest, response: &mut BusResponse) {
        if self.window.contains(now)
            && request.dst == self.dst
            && !request.function.is_write()
            && request.address == self.address
        {
            if let BusResponse::Ok(values) = response {
                for value in values {
                    *value = self.forged_value;
                }
            }
        }
    }
}

/// When a campaign stage becomes *eligible* to activate. Eligibility is
/// necessary but not sufficient: the previous stage must already be active
/// and any [`Stage::require_delivery_to`] gate must be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageTrigger {
    /// Eligible from an absolute tick on.
    AtTick(Tick),
    /// Eligible `dwell` ticks after the previous stage activated (or after
    /// tick zero for the first stage) — models attacker dwell time.
    AfterPrevious {
        /// Ticks to wait after the previous stage's activation.
        dwell: u64,
    },
}

/// One stage of a multi-stage attack campaign: a named step that arms a
/// set of injector effects once its trigger and preconditions hold.
pub struct Stage {
    name: String,
    trigger: StageTrigger,
    effects: Vec<Box<dyn Injector + Send>>,
    require_src: Option<UnitId>,
    require_dst: Option<UnitId>,
}

impl Stage {
    /// A stage with no effects and no delivery precondition — a pure
    /// dwell/pivot gate until effects or gates are added.
    #[must_use]
    pub fn new(name: impl Into<String>, trigger: StageTrigger) -> Self {
        Stage {
            name: name.into(),
            trigger,
            effects: Vec::new(),
            require_src: None,
            require_dst: None,
        }
    }

    /// Adds an injector effect armed while this stage is active.
    #[must_use]
    pub fn with_effect(mut self, effect: Box<dyn Injector + Send>) -> Self {
        self.effects.push(effect);
        self
    }

    /// Requires that an *answered* request to `dst` has been observed on
    /// the bus before this stage may activate. Because the firewall is
    /// consulted before injectors and dropped requests never produce a
    /// response, an observed answer proves the path to `dst` is open —
    /// this is the runtime reachability precondition.
    #[must_use]
    pub fn require_delivery_to(mut self, dst: UnitId) -> Self {
        self.require_dst = Some(dst);
        self
    }

    /// Narrows the delivery gate to answered requests *from* `src`
    /// (e.g. "the compromised workstation itself must reach the target").
    #[must_use]
    pub fn require_delivery_from(mut self, src: UnitId) -> Self {
        self.require_src = Some(src);
        self
    }

    /// The stage name used in logs and verdict reports.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Shared, read-side view of a [`StagedInjection`]'s progress: which
/// stages activated and when. The scorer reads this after the run.
#[derive(Debug)]
pub struct StageLog {
    names: Vec<String>,
    activations: Mutex<Vec<Option<u64>>>,
}

impl StageLog {
    fn new(names: Vec<String>) -> Self {
        let activations = Mutex::new(vec![None; names.len()]);
        StageLog { names, activations }
    }

    fn record(&self, index: usize, at: Tick) {
        self.activations.lock().expect("stage log poisoned")[index] = Some(at.count());
    }

    /// Number of stages in the plan.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.names.len()
    }

    /// The name of stage `index` (panics out of range).
    #[must_use]
    pub fn stage_name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Activation tick per stage, `None` for stages that never activated.
    #[must_use]
    pub fn activation_ticks(&self) -> Vec<Option<u64>> {
        self.activations.lock().expect("stage log poisoned").clone()
    }

    /// Count of stages that activated (stages activate strictly in order,
    /// so this is the length of the activated prefix).
    #[must_use]
    pub fn activated_count(&self) -> usize {
        self.activations
            .lock()
            .expect("stage log poisoned")
            .iter()
            .take_while(|a| a.is_some())
            .count()
    }

    /// Index of the first stage that never activated, or `None` when the
    /// whole plan ran.
    #[must_use]
    pub fn first_blocked(&self) -> Option<usize> {
        let count = self.activated_count();
        (count < self.names.len()).then_some(count)
    }
}

/// Executes an ordered stage plan as one composite [`Injector`]: stages
/// activate strictly in order when their [`StageTrigger`] fires and their
/// delivery precondition is met, and once active their effects stay armed
/// for the rest of the run. Progress is observable through the shared
/// [`StageLog`] (clone it via [`StagedInjection::log`] before handing the
/// injection to the simulation).
pub struct StagedInjection {
    name: String,
    stages: Vec<Stage>,
    log: Arc<StageLog>,
    activated: Vec<u64>,
    delivered: HashSet<(UnitId, UnitId)>,
}

impl StagedInjection {
    /// Builds the composite injector over `stages`.
    #[must_use]
    pub fn new(name: impl Into<String>, stages: Vec<Stage>) -> Self {
        let names = stages.iter().map(|s| s.name.clone()).collect();
        StagedInjection {
            name: name.into(),
            stages,
            log: Arc::new(StageLog::new(names)),
            activated: Vec::new(),
            delivered: HashSet::new(),
        }
    }

    /// A handle to the progress log, shared with the running injection.
    #[must_use]
    pub fn log(&self) -> Arc<StageLog> {
        Arc::clone(&self.log)
    }

    fn gate_open(&self, stage: &Stage) -> bool {
        match stage.require_dst {
            None => true,
            Some(dst) => self
                .delivered
                .iter()
                .any(|(src, d)| *d == dst && stage.require_src.map_or(true, |want| *src == want)),
        }
    }

    /// Activates every stage whose turn has come — called on each bus
    /// observation so progress advances with traffic, never faster.
    fn advance(&mut self, now: Tick) {
        while self.activated.len() < self.stages.len() {
            let index = self.activated.len();
            let stage = &self.stages[index];
            let eligible = match stage.trigger {
                StageTrigger::AtTick(at) => now >= at,
                StageTrigger::AfterPrevious { dwell } => {
                    let since = if index == 0 {
                        0
                    } else {
                        self.activated[index - 1]
                    };
                    now.count() >= since.saturating_add(dwell)
                }
            };
            if !eligible || !self.gate_open(stage) {
                break;
            }
            self.activated.push(now.count());
            self.log.record(index, now);
        }
    }
}

impl Injector for StagedInjection {
    fn name(&self) -> &str {
        &self.name
    }

    fn intercept_request(&mut self, now: Tick, request: &mut BusRequest) -> Verdict {
        self.advance(now);
        let active = self.activated.len();
        for stage in &mut self.stages[..active] {
            for effect in &mut stage.effects {
                if effect.intercept_request(now, request) == Verdict::Drop {
                    return Verdict::Drop;
                }
            }
        }
        Verdict::Deliver
    }

    fn intercept_response(&mut self, now: Tick, request: &BusRequest, response: &mut BusResponse) {
        // An answered request proves the firewall passed this (src, dst)
        // path — record it, then let that evidence unlock pending stages.
        self.delivered.insert((request.src, request.dst));
        self.advance(now);
        let active = self.activated.len();
        for stage in &mut self.stages[..active] {
            for effect in &mut stage.effects {
                effect.intercept_response(now, request, response);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> BusRequest {
        BusRequest::write(UnitId::new(1), UnitId::new(2), 40, 100)
    }

    #[test]
    fn window_contains_is_half_open() {
        let w = TickWindow::between(Tick::new(5), Tick::new(10));
        assert!(!w.contains(Tick::new(4)));
        assert!(w.contains(Tick::new(5)));
        assert!(w.contains(Tick::new(9)));
        assert!(!w.contains(Tick::new(10)));
        assert!(TickWindow::always().contains(Tick::ZERO));
        assert!(TickWindow::from(Tick::new(3)).contains(Tick::new(1_000_000)));
    }

    #[test]
    fn drop_matching_respects_window_and_dst() {
        let mut inj = DropMatching::new(
            "dos",
            TickWindow::between(Tick::new(1), Tick::new(2)),
            Some(UnitId::new(2)),
        );
        let mut r = req();
        assert_eq!(
            inj.intercept_request(Tick::new(0), &mut r),
            Verdict::Deliver
        );
        assert_eq!(inj.intercept_request(Tick::new(1), &mut r), Verdict::Drop);
        let mut other = BusRequest::write(UnitId::new(1), UnitId::new(9), 40, 1);
        assert_eq!(
            inj.intercept_request(Tick::new(1), &mut other),
            Verdict::Deliver
        );
    }

    #[test]
    fn drop_matching_writes_only_passes_reads() {
        let mut inj =
            DropMatching::new("dos", TickWindow::always(), Some(UnitId::new(2))).writes_only();
        let mut read = BusRequest::read(UnitId::new(1), UnitId::new(2), 0, 1);
        assert_eq!(
            inj.intercept_request(Tick::ZERO, &mut read),
            Verdict::Deliver
        );
        let mut write = req();
        assert_eq!(inj.intercept_request(Tick::ZERO, &mut write), Verdict::Drop);
    }

    #[test]
    fn register_override_rewrites_matching_write() {
        let mut inj =
            RegisterOverride::new("cmd-inject", TickWindow::always(), UnitId::new(2), 40, 9999);
        let mut r = req();
        assert_eq!(inj.intercept_request(Tick::ZERO, &mut r), Verdict::Deliver);
        assert_eq!(r.values, vec![9999]);
        // Different address untouched.
        let mut other = BusRequest::write(UnitId::new(1), UnitId::new(2), 41, 100);
        inj.intercept_request(Tick::ZERO, &mut other);
        assert_eq!(other.values, vec![100]);
    }

    #[test]
    fn response_override_spoofs_reads_only() {
        let mut inj = ResponseOverride::new("spoof", TickWindow::always(), UnitId::new(2), 7, 123);
        let read = BusRequest::read(UnitId::new(1), UnitId::new(2), 7, 1);
        let mut resp = BusResponse::ok(vec![55]);
        inj.intercept_response(Tick::ZERO, &read, &mut resp);
        assert_eq!(resp.values(), Some(&[123u16][..]));
        // Writes pass through.
        let write = req();
        let mut wresp = BusResponse::ok(vec![55]);
        inj.intercept_response(Tick::ZERO, &write, &mut wresp);
        assert_eq!(wresp.values(), Some(&[55u16][..]));
        // Exceptions untouched.
        let mut exc = BusResponse::exception(crate::ExceptionCode::DeviceFailure);
        inj.intercept_response(Tick::ZERO, &read, &mut exc);
        assert!(!exc.is_ok());
    }

    #[test]
    fn stages_activate_in_order_with_dwell() {
        let mut staged = StagedInjection::new(
            "campaign",
            vec![
                Stage::new("initial-access", StageTrigger::AtTick(Tick::new(2))),
                Stage::new("pivot", StageTrigger::AfterPrevious { dwell: 5 }),
            ],
        );
        let log = staged.log();
        let mut r = req();
        staged.intercept_request(Tick::new(1), &mut r);
        assert_eq!(log.activated_count(), 0);
        staged.intercept_request(Tick::new(3), &mut r);
        assert_eq!(log.activation_ticks(), vec![Some(3), None]);
        // Dwell counts from the *activation* tick (3), not the trigger tick.
        staged.intercept_request(Tick::new(7), &mut r);
        assert_eq!(log.activated_count(), 1);
        staged.intercept_request(Tick::new(8), &mut r);
        assert_eq!(log.activation_ticks(), vec![Some(3), Some(8)]);
        assert_eq!(log.first_blocked(), None);
    }

    #[test]
    fn delivery_gate_holds_until_an_answer_is_observed() {
        let mut staged = StagedInjection::new(
            "campaign",
            vec![Stage::new("actuate", StageTrigger::AtTick(Tick::ZERO))
                .require_delivery_to(UnitId::new(9))
                .require_delivery_from(UnitId::new(1))],
        );
        let log = staged.log();
        let mut r = req();
        staged.intercept_request(Tick::new(4), &mut r);
        assert_eq!(log.first_blocked(), Some(0), "no delivery seen yet");
        // An answer for a different destination does not open the gate.
        let other = BusRequest::read(UnitId::new(1), UnitId::new(2), 0, 1);
        let mut resp = BusResponse::ok(vec![1]);
        staged.intercept_response(Tick::new(5), &other, &mut resp);
        assert_eq!(log.activated_count(), 0);
        // An answer from the wrong source does not either.
        let wrong_src = BusRequest::read(UnitId::new(3), UnitId::new(9), 0, 1);
        staged.intercept_response(Tick::new(6), &wrong_src, &mut resp);
        assert_eq!(log.activated_count(), 0);
        let proof = BusRequest::read(UnitId::new(1), UnitId::new(9), 0, 1);
        staged.intercept_response(Tick::new(7), &proof, &mut resp);
        assert_eq!(log.activation_ticks(), vec![Some(7)]);
    }

    #[test]
    fn effects_arm_only_after_activation_and_drop_wins() {
        let mut staged = StagedInjection::new(
            "campaign",
            vec![
                Stage::new("tamper", StageTrigger::AtTick(Tick::new(5))).with_effect(Box::new(
                    RegisterOverride::new("force", TickWindow::always(), UnitId::new(2), 40, 9999),
                )),
                Stage::new("dos", StageTrigger::AtTick(Tick::new(10))).with_effect(Box::new(
                    DropMatching::new("drop", TickWindow::always(), Some(UnitId::new(2))),
                )),
            ],
        );
        let mut early = req();
        assert_eq!(
            staged.intercept_request(Tick::new(1), &mut early),
            Verdict::Deliver
        );
        assert_eq!(early.values, vec![100], "inactive stage must not rewrite");
        let mut mid = req();
        assert_eq!(
            staged.intercept_request(Tick::new(6), &mut mid),
            Verdict::Deliver
        );
        assert_eq!(mid.values, vec![9999], "active stage rewrites");
        let mut late = req();
        assert_eq!(
            staged.intercept_request(Tick::new(11), &mut late),
            Verdict::Drop,
            "any active effect's drop wins"
        );
    }

    #[test]
    fn later_stage_cannot_overtake_a_gated_earlier_stage() {
        let mut staged = StagedInjection::new(
            "campaign",
            vec![
                Stage::new("blocked", StageTrigger::AtTick(Tick::ZERO))
                    .require_delivery_to(UnitId::new(77)),
                Stage::new("ready", StageTrigger::AtTick(Tick::ZERO)),
            ],
        );
        let log = staged.log();
        let mut r = req();
        staged.intercept_request(Tick::new(100), &mut r);
        assert_eq!(log.activation_ticks(), vec![None, None]);
        assert_eq!(log.first_blocked(), Some(0));
    }
}
