//! Deterministic discrete-event simulation kernel for cyber-physical systems.
//!
//! The paper's thesis is that security tooling must connect attacks to
//! *physical consequences*. This crate is the substrate that makes the
//! connection executable: an event-scheduled kernel ([`Simulation`]
//! driven by a min-heap [`EventQueue`]) coupling a physical [`Plant`] to
//! digital [`Device`]s over a MODBUS-flavoured [`Fieldbus`] with a
//! [`Firewall`], plus message-level attack [`Injector`]s, latching
//! [`HazardMonitor`]s, and a [`TraceRecorder`]. The fleet module scales
//! single scenarios into seeded Monte-Carlo campaigns ([`run_fleet`],
//! [`derive_seed`]) whose results are independent of thread count.
//!
//! Everything is deterministic: events pop in `(tick, phase, FIFO)`
//! order, devices are polled in registration order, requests are routed
//! in issue order, and all randomness (e.g. sensor noise in downstream
//! crates) is seeded explicitly.
//!
//! # Examples
//!
//! A one-device closed loop over a first-order plant:
//!
//! ```
//! use cpssec_sim::{Device, Outbox, BusRequest, BusResponse, Simulation, UnitId};
//!
//! struct Tank { level: f64, inflow: f64 }
//! impl cpssec_sim::Plant for Tank {
//!     fn integrate(&mut self, dt: f64) {
//!         self.level += (self.inflow - 0.1 * self.level) * dt;
//!     }
//! }
//!
//! struct Controller;
//! impl Device<Tank> for Controller {
//!     fn unit_id(&self) -> UnitId { UnitId::new(1) }
//!     fn name(&self) -> &str { "controller" }
//!     fn poll(&mut self, plant: &mut Tank, _outbox: &mut Outbox) {
//!         plant.inflow = if plant.level < 5.0 { 1.0 } else { 0.0 };
//!     }
//!     fn handle(&mut self, _plant: &mut Tank, _req: &BusRequest) -> BusResponse {
//!         BusResponse::exception(cpssec_sim::ExceptionCode::IllegalFunction)
//!     }
//! }
//!
//! let mut sim = Simulation::new(Tank { level: 0.0, inflow: 0.0 }, 0.1);
//! sim.add_device(Controller);
//! sim.run(1000);
//! assert!((sim.plant().level - 5.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod control;
mod device;
mod fleet;
mod inject;
mod kernel;
mod monitor;
mod scheduler;
mod time;
mod trace;

pub use bus::{
    BusFunction, BusLogEntry, BusOutcome, BusRequest, BusResponse, ExceptionCode, Fieldbus,
    Firewall, FirewallAction, FirewallRule, UnitId,
};
pub use control::Pid;
pub use device::{Device, Outbox};
pub use fleet::{derive_seed, run_fleet, SplitMix64};
pub use inject::{
    DropMatching, Injector, RegisterOverride, ResponseOverride, Stage, StageLog, StageTrigger,
    StagedInjection, TickWindow, Verdict,
};
pub use kernel::{KernelEngine, Plant, Simulation};
pub use monitor::{HazardEvent, HazardMonitor};
pub use scheduler::EventQueue;
pub use time::Tick;
pub use trace::{SeriesSummary, TraceRecorder};
