//! The fixed-step simulation kernel.

use core::fmt;

use crate::{
    BusLogEntry, BusOutcome, BusRequest, Device, Fieldbus, Firewall, FirewallAction, HazardEvent,
    HazardMonitor, Injector, Outbox, Tick, TraceRecorder, UnitId, Verdict,
};

/// A physical process integrated once per tick.
pub trait Plant {
    /// Advances the continuous dynamics by `dt` seconds.
    fn integrate(&mut self, dt: f64);
}

/// The simulation: one plant, any number of devices, a bus, injectors,
/// monitors, and a trace.
///
/// Per tick the kernel runs six deterministic phases:
///
/// 1. **integrate** — the plant advances by `dt`;
/// 2. **poll** — devices do physical I/O and queue bus requests, in
///    registration order;
/// 3. **route** — each queued request passes the firewall, then every
///    injector (which may rewrite or drop it), then reaches the target
///    device; the response passes the injectors again and returns to the
///    requester, all logged;
/// 4. **bookkeeping** — every device's [`Device::after_tick`] runs;
/// 5. **monitor** — hazard monitors check the plant state;
/// 6. **record** — the trace recorder samples its probes.
pub struct Simulation<P> {
    plant: P,
    dt: f64,
    now: Tick,
    bus: Fieldbus,
    devices: Vec<Box<dyn Device<P> + Send>>,
    injectors: Vec<Box<dyn Injector + Send>>,
    monitors: Vec<HazardMonitor<P>>,
    hazards: Vec<HazardEvent>,
    trace: TraceRecorder<P>,
}

impl<P: Plant> Simulation<P> {
    /// Creates a simulation over `plant` with a step of `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    #[must_use]
    pub fn new(plant: P, dt: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        Simulation {
            plant,
            dt,
            now: Tick::ZERO,
            bus: Fieldbus::new(),
            devices: Vec::new(),
            injectors: Vec::new(),
            monitors: Vec::new(),
            hazards: Vec::new(),
            trace: TraceRecorder::new(),
        }
    }

    /// Registers a device.
    ///
    /// # Panics
    ///
    /// Panics if another device already uses the same unit id — unit ids
    /// are bus addresses and must be unique.
    pub fn add_device(&mut self, device: impl Device<P> + Send + 'static) {
        assert!(
            self.devices.iter().all(|d| d.unit_id() != device.unit_id()),
            "duplicate unit id {}",
            device.unit_id()
        );
        self.devices.push(Box::new(device));
    }

    /// Installs the bus firewall.
    pub fn set_firewall(&mut self, firewall: Firewall) {
        self.bus.set_firewall(firewall);
    }

    /// Registers an attack injector; injectors run in registration order.
    pub fn add_injector(&mut self, injector: impl Injector + Send + 'static) {
        self.injectors.push(Box::new(injector));
    }

    /// Registers a hazard monitor.
    pub fn add_monitor(&mut self, monitor: HazardMonitor<P>) {
        self.monitors.push(monitor);
    }

    /// Registers a trace probe.
    pub fn probe(&mut self, name: impl Into<String>, probe: impl Fn(&P) -> f64 + Send + 'static) {
        self.trace.probe(name, probe);
    }

    /// Advances one tick.
    pub fn step(&mut self) {
        self.now = self.now.next();
        self.plant.integrate(self.dt);

        // Poll phase.
        let mut queued: Vec<BusRequest> = Vec::new();
        for device in &mut self.devices {
            let mut outbox = Outbox::default();
            device.poll(&mut self.plant, &mut outbox);
            queued.extend(outbox.requests);
        }

        // Routing phase.
        for original in queued {
            self.route(original);
        }

        // Bookkeeping phase.
        for device in &mut self.devices {
            device.after_tick(&mut self.plant, self.now);
        }

        // Monitor phase.
        for monitor in &mut self.monitors {
            if let Some(event) = monitor.check(self.now, &self.plant) {
                self.hazards.push(event);
            }
        }

        // Record phase.
        self.trace.sample(&self.plant);
    }

    fn route(&mut self, original: BusRequest) {
        if self.bus.decide(&original) == FirewallAction::Deny {
            self.bus.record(BusLogEntry {
                tick: self.now,
                request: original,
                tampered: false,
                outcome: BusOutcome::FirewallDenied,
            });
            return;
        }
        let mut request = original.clone();
        for injector in &mut self.injectors {
            if injector.intercept_request(self.now, &mut request) == Verdict::Drop {
                let by = injector.name().to_owned();
                self.bus.record(BusLogEntry {
                    tick: self.now,
                    request,
                    tampered: true,
                    outcome: BusOutcome::InjectorDropped { by },
                });
                return;
            }
        }
        let tampered = request != original;
        // Protocol-level validation (MODBUS limits): register quantity must
        // be 1..=123 and writes must carry exactly `quantity` values. A
        // malformed request draws an exception response without reaching
        // the device — like a real protocol stack.
        if let Some(code) = validate_request(&request) {
            let response = crate::BusResponse::exception(code);
            if let Some(src_index) = self.devices.iter().position(|d| d.unit_id() == request.src) {
                self.devices[src_index].on_response(&mut self.plant, &request, &response);
            }
            self.bus.record(BusLogEntry {
                tick: self.now,
                request,
                tampered,
                outcome: BusOutcome::Answered(response),
            });
            return;
        }
        let Some(dst_index) = self.devices.iter().position(|d| d.unit_id() == request.dst) else {
            self.bus.record(BusLogEntry {
                tick: self.now,
                request,
                tampered,
                outcome: BusOutcome::NoSuchUnit,
            });
            return;
        };
        let mut response = self.devices[dst_index].handle(&mut self.plant, &request);
        for injector in &mut self.injectors {
            injector.intercept_response(self.now, &request, &mut response);
        }
        if let Some(src_index) = self.devices.iter().position(|d| d.unit_id() == request.src) {
            self.devices[src_index].on_response(&mut self.plant, &request, &response);
        }
        self.bus.record(BusLogEntry {
            tick: self.now,
            request,
            tampered,
            outcome: BusOutcome::Answered(response),
        });
    }

    /// Advances `ticks` steps.
    pub fn run(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.step();
        }
    }

    /// Runs until a hazard fires or `max_ticks` elapse; returns the first
    /// hazard if one occurred.
    pub fn run_until_hazard(&mut self, max_ticks: u64) -> Option<HazardEvent> {
        for _ in 0..max_ticks {
            let before = self.hazards.len();
            self.step();
            if self.hazards.len() > before {
                return Some(self.hazards[before].clone());
            }
        }
        None
    }

    /// The current tick.
    #[must_use]
    pub fn now(&self) -> Tick {
        self.now
    }

    /// The kernel step in seconds.
    #[must_use]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Elapsed simulated seconds.
    #[must_use]
    pub fn elapsed_seconds(&self) -> f64 {
        self.now.as_seconds(self.dt)
    }

    /// The plant.
    #[must_use]
    pub fn plant(&self) -> &P {
        &self.plant
    }

    /// Mutable access to the plant (scenario setup, fault injection).
    pub fn plant_mut(&mut self) -> &mut P {
        &mut self.plant
    }

    /// The bus (message log, firewall).
    #[must_use]
    pub fn bus(&self) -> &Fieldbus {
        &self.bus
    }

    /// Mutable access to the bus.
    pub fn bus_mut(&mut self) -> &mut Fieldbus {
        &mut self.bus
    }

    /// All hazard events so far, in order of occurrence.
    #[must_use]
    pub fn hazards(&self) -> &[HazardEvent] {
        &self.hazards
    }

    /// The trace recorder.
    #[must_use]
    pub fn trace(&self) -> &TraceRecorder<P> {
        &self.trace
    }

    /// Number of registered devices.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Looks up a device's registration index by unit id.
    #[must_use]
    pub fn has_unit(&self, unit: UnitId) -> bool {
        self.devices.iter().any(|d| d.unit_id() == unit)
    }
}

/// MODBUS-style request validation: quantity in `1..=123` and, for
/// writes, a value payload matching the quantity.
fn validate_request(request: &BusRequest) -> Option<crate::ExceptionCode> {
    if request.quantity == 0 || request.quantity > 123 {
        return Some(crate::ExceptionCode::IllegalDataValue);
    }
    if request.function.is_write() && request.values.len() != usize::from(request.quantity) {
        return Some(crate::ExceptionCode::IllegalDataValue);
    }
    None
}

impl<P: fmt::Debug> fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("dt", &self.dt)
            .field("devices", &self.devices.len())
            .field("injectors", &self.injectors.len())
            .field("hazards", &self.hazards.len())
            .field("plant", &self.plant)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        BusResponse, DropMatching, ExceptionCode, FirewallRule, RegisterOverride, ResponseOverride,
        TickWindow,
    };

    #[derive(Debug)]
    struct Tank {
        level: f64,
        inflow: f64,
    }

    impl Plant for Tank {
        fn integrate(&mut self, dt: f64) {
            self.level += (self.inflow - 0.1 * self.level) * dt;
        }
    }

    const SENSOR: UnitId = UnitId::new(10);
    const CONTROLLER: UnitId = UnitId::new(1);
    const ACTUATOR: UnitId = UnitId::new(20);

    /// Serves the tank level (scaled x100) at register 0.
    struct LevelSensor;
    impl Device<Tank> for LevelSensor {
        fn unit_id(&self) -> UnitId {
            SENSOR
        }
        fn name(&self) -> &str {
            "level-sensor"
        }
        fn poll(&mut self, _plant: &mut Tank, _outbox: &mut Outbox) {}
        fn handle(&mut self, plant: &mut Tank, request: &BusRequest) -> BusResponse {
            if request.address == 0 && !request.function.is_write() {
                BusResponse::ok(vec![(plant.level * 100.0) as u16])
            } else {
                BusResponse::exception(ExceptionCode::IllegalDataAddress)
            }
        }
    }

    /// Applies register 0 writes (scaled x100) as the inflow command.
    struct InflowValve;
    impl Device<Tank> for InflowValve {
        fn unit_id(&self) -> UnitId {
            ACTUATOR
        }
        fn name(&self) -> &str {
            "inflow-valve"
        }
        fn poll(&mut self, _plant: &mut Tank, _outbox: &mut Outbox) {}
        fn handle(&mut self, plant: &mut Tank, request: &BusRequest) -> BusResponse {
            if request.function.is_write() && request.address == 0 {
                plant.inflow = f64::from(request.values[0]) / 100.0;
                BusResponse::ok(request.values.clone())
            } else {
                BusResponse::exception(ExceptionCode::IllegalFunction)
            }
        }
    }

    /// Bang-bang controller reading the sensor and commanding the valve.
    struct Controller {
        setpoint: f64,
        last_level: f64,
    }
    impl Device<Tank> for Controller {
        fn unit_id(&self) -> UnitId {
            CONTROLLER
        }
        fn name(&self) -> &str {
            "controller"
        }
        fn poll(&mut self, _plant: &mut Tank, outbox: &mut Outbox) {
            outbox.send(BusRequest::read(CONTROLLER, SENSOR, 0, 1));
            let command = if self.last_level < self.setpoint {
                100u16
            } else {
                0
            };
            outbox.send(BusRequest::write(CONTROLLER, ACTUATOR, 0, command));
        }
        fn handle(&mut self, _plant: &mut Tank, _request: &BusRequest) -> BusResponse {
            BusResponse::exception(ExceptionCode::IllegalFunction)
        }
        fn on_response(&mut self, _plant: &mut Tank, request: &BusRequest, response: &BusResponse) {
            if request.dst == SENSOR {
                if let Some(values) = response.values() {
                    self.last_level = f64::from(values[0]) / 100.0;
                }
            }
        }
    }

    fn closed_loop() -> Simulation<Tank> {
        let mut sim = Simulation::new(
            Tank {
                level: 0.0,
                inflow: 0.0,
            },
            0.1,
        );
        sim.add_device(LevelSensor);
        sim.add_device(InflowValve);
        sim.add_device(Controller {
            setpoint: 5.0,
            last_level: 0.0,
        });
        sim
    }

    #[test]
    fn closed_loop_regulates_to_setpoint() {
        let mut sim = closed_loop();
        sim.run(2000);
        assert!(
            (sim.plant().level - 5.0).abs() < 0.5,
            "level {}",
            sim.plant().level
        );
        assert!(sim.bus().message_count() > 0);
    }

    #[test]
    fn duplicate_unit_ids_panic() {
        let mut sim = closed_loop();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.add_device(LevelSensor);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn firewall_denial_is_logged_and_blocks_control() {
        let mut sim = closed_loop();
        sim.set_firewall(
            Firewall::new(FirewallAction::Allow).with_rule(
                FirewallRule::any(FirewallAction::Deny)
                    .from_src(CONTROLLER)
                    .to_dst(ACTUATOR),
            ),
        );
        sim.run(500);
        // The valve never opens, so the tank stays empty.
        assert!(sim.plant().level < 0.1);
        assert!(sim
            .bus()
            .log()
            .iter()
            .any(|e| e.outcome == BusOutcome::FirewallDenied));
    }

    #[test]
    fn register_override_forces_the_actuator() {
        let mut sim = closed_loop();
        // Force every inflow command to zero: the tank can never fill.
        sim.add_injector(RegisterOverride::new(
            "force-closed",
            TickWindow::always(),
            ACTUATOR,
            0,
            0,
        ));
        sim.run(1000);
        assert!(sim.plant().level < 0.1);
        assert!(sim.bus().log().iter().any(|e| e.tampered));
    }

    #[test]
    fn response_override_blinds_the_controller() {
        let mut sim = closed_loop();
        // Spoof the level reading to zero: controller keeps filling forever.
        sim.add_injector(ResponseOverride::new(
            "spoof-level",
            TickWindow::always(),
            SENSOR,
            0,
            0,
        ));
        sim.run(3000);
        assert!(sim.plant().level > 7.0, "level {}", sim.plant().level);
    }

    #[test]
    fn drop_injector_is_attributed_in_the_log() {
        let mut sim = closed_loop();
        sim.add_injector(DropMatching::new("dos", TickWindow::always(), Some(SENSOR)));
        sim.run(10);
        assert!(sim.bus().log().iter().any(|e| matches!(
            &e.outcome,
            BusOutcome::InjectorDropped { by } if by == "dos"
        )));
    }

    #[test]
    fn unknown_destination_is_logged() {
        struct Babbler;
        impl Device<Tank> for Babbler {
            fn unit_id(&self) -> UnitId {
                UnitId::new(99)
            }
            fn name(&self) -> &str {
                "babbler"
            }
            fn poll(&mut self, _plant: &mut Tank, outbox: &mut Outbox) {
                outbox.send(BusRequest::read(UnitId::new(99), UnitId::new(42), 0, 1));
            }
            fn handle(&mut self, _plant: &mut Tank, _req: &BusRequest) -> BusResponse {
                BusResponse::exception(ExceptionCode::IllegalFunction)
            }
        }
        let mut sim = Simulation::new(
            Tank {
                level: 0.0,
                inflow: 0.0,
            },
            0.1,
        );
        sim.add_device(Babbler);
        sim.step();
        assert_eq!(sim.bus().log()[0].outcome, BusOutcome::NoSuchUnit);
    }

    #[test]
    fn monitors_latch_and_run_until_hazard_stops() {
        let mut sim = closed_loop();
        sim.add_monitor(HazardMonitor::new("half-full", |t: &Tank| t.level > 2.5));
        let event = sim.run_until_hazard(5000).expect("tank passes 2.5");
        assert_eq!(event.hazard, "half-full");
        assert_eq!(sim.hazards().len(), 1);
        // Continue running: latched, no further events.
        sim.run(100);
        assert_eq!(sim.hazards().len(), 1);
    }

    #[test]
    fn trace_samples_every_tick() {
        let mut sim = closed_loop();
        sim.probe("level", |t: &Tank| t.level);
        sim.run(50);
        assert_eq!(sim.trace().sample_count(), 50);
        let summary = sim.trace().summary("level").unwrap();
        assert!(summary.max <= 6.0);
    }

    #[test]
    fn determinism_two_identical_runs_agree() {
        let run = || {
            let mut sim = closed_loop();
            sim.probe("level", |t: &Tank| t.level);
            sim.run(500);
            (
                sim.plant().level.to_bits(),
                sim.bus().message_count(),
                sim.trace().series("level").unwrap().to_vec(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn malformed_requests_draw_protocol_exceptions() {
        struct Malformed {
            responses: Vec<BusResponse>,
        }
        impl Device<Tank> for Malformed {
            fn unit_id(&self) -> UnitId {
                UnitId::new(88)
            }
            fn name(&self) -> &str {
                "malformed"
            }
            fn poll(&mut self, _plant: &mut Tank, outbox: &mut Outbox) {
                // Zero quantity, oversized quantity, mismatched payload.
                outbox.send(BusRequest::read(UnitId::new(88), SENSOR, 0, 0));
                outbox.send(BusRequest::read(UnitId::new(88), SENSOR, 0, 500));
                let mut bad_write = BusRequest::write(UnitId::new(88), ACTUATOR, 0, 1);
                bad_write.quantity = 2; // payload has one value
                outbox.send(bad_write);
            }
            fn handle(&mut self, _plant: &mut Tank, _req: &BusRequest) -> BusResponse {
                BusResponse::exception(ExceptionCode::IllegalFunction)
            }
            fn on_response(&mut self, _plant: &mut Tank, _req: &BusRequest, resp: &BusResponse) {
                self.responses.push(resp.clone());
            }
        }
        let mut sim = closed_loop();
        sim.add_device(Malformed {
            responses: Vec::new(),
        });
        sim.step();
        // All three malformed requests were answered with exceptions and
        // never reached a device handler.
        let exceptions = sim
            .bus()
            .log()
            .iter()
            .filter(|e| {
                matches!(
                    &e.outcome,
                    BusOutcome::Answered(BusResponse::Exception(ExceptionCode::IllegalDataValue))
                )
            })
            .count();
        assert_eq!(exceptions, 3);
    }

    #[test]
    fn after_tick_runs_once_per_tick_per_device() {
        struct Counter {
            ticks_seen: u64,
        }
        impl Device<Tank> for Counter {
            fn unit_id(&self) -> UnitId {
                UnitId::new(77)
            }
            fn name(&self) -> &str {
                "counter"
            }
            fn poll(&mut self, _plant: &mut Tank, _outbox: &mut Outbox) {}
            fn handle(&mut self, _plant: &mut Tank, _req: &BusRequest) -> BusResponse {
                BusResponse::exception(ExceptionCode::IllegalFunction)
            }
            fn after_tick(&mut self, plant: &mut Tank, now: Tick) {
                self.ticks_seen += 1;
                assert_eq!(now.count(), self.ticks_seen);
                // Bookkeeping may touch the plant.
                plant.inflow = plant.inflow.max(0.0);
            }
        }
        let mut sim = Simulation::new(
            Tank {
                level: 0.0,
                inflow: 0.0,
            },
            0.1,
        );
        sim.add_device(Counter { ticks_seen: 0 });
        sim.run(25);
        assert_eq!(sim.now().count(), 25);
    }

    #[test]
    fn elapsed_seconds_track_ticks() {
        let mut sim = closed_loop();
        sim.run(100);
        assert_eq!(sim.now(), Tick::new(100));
        assert!((sim.elapsed_seconds() - 10.0).abs() < 1e-9);
        assert!(sim.has_unit(SENSOR));
        assert!(!sim.has_unit(UnitId::new(123)));
        assert_eq!(sim.device_count(), 3);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_is_rejected() {
        let _ = Simulation::new(
            Tank {
                level: 0.0,
                inflow: 0.0,
            },
            0.0,
        );
    }
}
