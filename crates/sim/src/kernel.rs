//! The event-scheduled simulation kernel.

use core::fmt;

use crate::{
    BusLogEntry, BusOutcome, BusRequest, Device, EventQueue, Fieldbus, Firewall, FirewallAction,
    HazardEvent, HazardMonitor, Injector, Outbox, Tick, TraceRecorder, UnitId, Verdict,
};

/// A physical process integrated once per tick.
pub trait Plant {
    /// Advances the continuous dynamics by `dt` seconds.
    fn integrate(&mut self, dt: f64);
}

/// Which stepping engine drives the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelEngine {
    /// The min-heap event queue (the default): every phase is a scheduled
    /// event popped in `(tick, class, FIFO)` order, so device poll
    /// periods, injector arming, and future event kinds compose freely.
    #[default]
    EventQueue,
    /// The original hand-rolled six-phase loop, kept as the oracle for
    /// equivalence testing. Period/arming features are event-queue-only;
    /// under this engine every device polls every tick and injectors
    /// registered with [`Simulation::add_injector_at`] never arm.
    ReferenceLoop,
}

/// Event phase classes: within one tick, lower classes run first. The
/// ranks mirror the reference loop's phase order exactly, which is what
/// makes "every event at period 1" reproduce it byte-for-byte.
const CLASS_INTEGRATE: u8 = 0;
const CLASS_ARM: u8 = 1;
const CLASS_POLL: u8 = 2;
const CLASS_FLUSH: u8 = 3;
const CLASS_BOOKKEEP: u8 = 4;
const CLASS_MONITOR: u8 = 5;
const CLASS_RECORD: u8 = 6;

/// The kernel's own event vocabulary. Recurring events reschedule
/// themselves after executing; one-shot events (arming) do not.
enum KernelEvent {
    /// Advance the plant by `dt`.
    Integrate,
    /// Activate a not-yet-armed injector.
    ArmInjector { index: usize },
    /// Let one device do physical I/O and queue bus requests.
    Poll { device: usize },
    /// Route every request queued by this tick's polls.
    FlushBus,
    /// One device's end-of-tick bookkeeping.
    Bookkeep { device: usize },
    /// Check all hazard monitors.
    Monitor,
    /// Sample the trace probes.
    Record,
}

/// An injector plus its armed state; unarmed injectors are skipped on
/// the bus until their arming event fires.
struct ArmedInjector {
    injector: Box<dyn Injector + Send>,
    armed: bool,
}

/// The simulation: one plant, any number of devices, a bus, injectors,
/// monitors, and a trace.
///
/// Work is ordered by a [`Tick`]-keyed min-heap of events. Within one
/// tick, events run by phase class — the same six phases the original
/// fixed-step kernel hardcoded:
///
/// 1. **integrate** — the plant advances by `dt`;
/// 2. **poll** — devices do physical I/O and queue bus requests, in
///    registration order (plus injector arming just before);
/// 3. **route** — each queued request passes the firewall, then every
///    armed injector (which may rewrite or drop it), then reaches the
///    target device; the response passes the injectors again and returns
///    to the requester, all logged;
/// 4. **bookkeeping** — every device's [`Device::after_tick`] runs;
/// 5. **monitor** — hazard monitors check the plant state;
/// 6. **record** — the trace recorder samples its probes.
///
/// Exact ties within a class pop FIFO, so registration order is
/// preserved. With every event at period 1 this is exactly the fixed
/// schedule; [`Simulation::set_poll_period`] stretches a device's poll
/// interval without disturbing anything else.
pub struct Simulation<P> {
    plant: P,
    dt: f64,
    now: Tick,
    bus: Fieldbus,
    devices: Vec<Box<dyn Device<P> + Send>>,
    poll_periods: Vec<u64>,
    injectors: Vec<ArmedInjector>,
    monitors: Vec<HazardMonitor<P>>,
    hazards: Vec<HazardEvent>,
    trace: TraceRecorder<P>,
    engine: KernelEngine,
    queue: EventQueue<KernelEvent>,
    pending: Vec<BusRequest>,
    primed: bool,
}

impl<P: Plant> Simulation<P> {
    /// Creates a simulation over `plant` with a step of `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    #[must_use]
    pub fn new(plant: P, dt: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        Simulation {
            plant,
            dt,
            now: Tick::ZERO,
            bus: Fieldbus::new(),
            devices: Vec::new(),
            poll_periods: Vec::new(),
            injectors: Vec::new(),
            monitors: Vec::new(),
            hazards: Vec::new(),
            trace: TraceRecorder::new(),
            engine: KernelEngine::default(),
            queue: EventQueue::new(),
            pending: Vec::new(),
            primed: false,
        }
    }

    /// Selects the stepping engine. Choose before the first step; the
    /// reference loop ignores the event queue entirely.
    pub fn set_engine(&mut self, engine: KernelEngine) {
        self.engine = engine;
    }

    /// The active stepping engine.
    #[must_use]
    pub fn engine(&self) -> KernelEngine {
        self.engine
    }

    /// Registers a device (polled every tick until
    /// [`Simulation::set_poll_period`] says otherwise).
    ///
    /// # Panics
    ///
    /// Panics if another device already uses the same unit id — unit ids
    /// are bus addresses and must be unique.
    pub fn add_device(&mut self, device: impl Device<P> + Send + 'static) {
        assert!(
            self.devices.iter().all(|d| d.unit_id() != device.unit_id()),
            "duplicate unit id {}",
            device.unit_id()
        );
        self.devices.push(Box::new(device));
        self.poll_periods.push(1);
        if self.primed {
            // The running schedule was seeded without this device; give it
            // events from the next tick on. FIFO tie-breaking puts them
            // after every earlier registration, as the loop would.
            let index = self.devices.len() - 1;
            let at = self.now.next();
            self.queue
                .schedule(at, CLASS_POLL, KernelEvent::Poll { device: index });
            self.queue
                .schedule(at, CLASS_BOOKKEEP, KernelEvent::Bookkeep { device: index });
        }
    }

    /// Sets how many ticks elapse between polls of `unit` (default 1).
    /// Takes effect when the device's next already-scheduled poll fires.
    /// Event-queue engine only; the reference loop polls every tick.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or no device uses `unit`.
    pub fn set_poll_period(&mut self, unit: UnitId, period: u64) {
        assert!(period >= 1, "poll period must be at least 1 tick");
        let index = self
            .devices
            .iter()
            .position(|d| d.unit_id() == unit)
            .unwrap_or_else(|| panic!("no device with unit id {unit}"));
        self.poll_periods[index] = period;
    }

    /// Installs the bus firewall.
    pub fn set_firewall(&mut self, firewall: Firewall) {
        self.bus.set_firewall(firewall);
    }

    /// Registers an attack injector, armed immediately; injectors run in
    /// registration order.
    pub fn add_injector(&mut self, injector: impl Injector + Send + 'static) {
        self.injectors.push(ArmedInjector {
            injector: Box::new(injector),
            armed: true,
        });
    }

    /// Registers an injector that stays dormant until its arming event
    /// fires at `arm_at` — the event-queue form of a staged intrusion.
    /// (The injector's own [`crate::TickWindow`] still applies on top.)
    /// Event-queue engine only.
    pub fn add_injector_at(&mut self, injector: impl Injector + Send + 'static, arm_at: Tick) {
        let index = self.injectors.len();
        self.injectors.push(ArmedInjector {
            injector: Box::new(injector),
            armed: false,
        });
        self.queue
            .schedule(arm_at, CLASS_ARM, KernelEvent::ArmInjector { index });
    }

    /// Registers a hazard monitor.
    pub fn add_monitor(&mut self, monitor: HazardMonitor<P>) {
        self.monitors.push(monitor);
    }

    /// Registers a trace probe.
    pub fn probe(&mut self, name: impl Into<String>, probe: impl Fn(&P) -> f64 + Send + 'static) {
        self.trace.probe(name, probe);
    }

    /// Enables or disables trace sampling (fleet campaigns disable it to
    /// run thousands of scenarios without accumulating columns).
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// Advances one tick.
    pub fn step(&mut self) {
        self.now = self.now.next();
        match self.engine {
            KernelEngine::EventQueue => self.step_events(),
            KernelEngine::ReferenceLoop => self.step_reference(),
        }
    }

    /// Pops and executes every event due at (or overdue by) the current
    /// tick. Recurring events reschedule themselves, so the queue always
    /// holds the next tick's schedule when this returns.
    fn step_events(&mut self) {
        if !self.primed {
            self.prime();
        }
        while let Some((_, _, event)) = self.queue.pop_due(self.now) {
            self.execute(event);
        }
    }

    /// Seeds the recurring schedule at the first stepped tick. Lazy so
    /// that devices and monitors registered between construction and the
    /// first step are all covered without special cases.
    fn prime(&mut self) {
        self.primed = true;
        let t = self.now;
        self.queue
            .schedule(t, CLASS_INTEGRATE, KernelEvent::Integrate);
        for index in 0..self.devices.len() {
            self.queue
                .schedule(t, CLASS_POLL, KernelEvent::Poll { device: index });
        }
        self.queue.schedule(t, CLASS_FLUSH, KernelEvent::FlushBus);
        for index in 0..self.devices.len() {
            self.queue
                .schedule(t, CLASS_BOOKKEEP, KernelEvent::Bookkeep { device: index });
        }
        self.queue.schedule(t, CLASS_MONITOR, KernelEvent::Monitor);
        self.queue.schedule(t, CLASS_RECORD, KernelEvent::Record);
    }

    fn execute(&mut self, event: KernelEvent) {
        match event {
            KernelEvent::Integrate => {
                self.plant.integrate(self.dt);
                self.queue
                    .schedule(self.now.next(), CLASS_INTEGRATE, KernelEvent::Integrate);
            }
            KernelEvent::ArmInjector { index } => {
                self.injectors[index].armed = true;
            }
            KernelEvent::Poll { device } => {
                let mut outbox = Outbox::default();
                self.devices[device].poll(&mut self.plant, &mut outbox);
                self.pending.extend(outbox.requests);
                let period = self.poll_periods[device];
                self.queue
                    .schedule(self.now + period, CLASS_POLL, KernelEvent::Poll { device });
            }
            KernelEvent::FlushBus => {
                let queued = std::mem::take(&mut self.pending);
                for original in queued {
                    self.route(original);
                }
                self.queue
                    .schedule(self.now.next(), CLASS_FLUSH, KernelEvent::FlushBus);
            }
            KernelEvent::Bookkeep { device } => {
                self.devices[device].after_tick(&mut self.plant, self.now);
                self.queue.schedule(
                    self.now.next(),
                    CLASS_BOOKKEEP,
                    KernelEvent::Bookkeep { device },
                );
            }
            KernelEvent::Monitor => {
                for monitor in &mut self.monitors {
                    if let Some(event) = monitor.check(self.now, &self.plant) {
                        self.hazards.push(event);
                    }
                }
                self.queue
                    .schedule(self.now.next(), CLASS_MONITOR, KernelEvent::Monitor);
            }
            KernelEvent::Record => {
                self.trace.sample(&self.plant);
                self.queue
                    .schedule(self.now.next(), CLASS_RECORD, KernelEvent::Record);
            }
        }
    }

    /// The original six-phase loop, preserved verbatim as the oracle the
    /// event engine is tested against.
    fn step_reference(&mut self) {
        self.plant.integrate(self.dt);

        // Poll phase.
        let mut queued: Vec<BusRequest> = Vec::new();
        for device in &mut self.devices {
            let mut outbox = Outbox::default();
            device.poll(&mut self.plant, &mut outbox);
            queued.extend(outbox.requests);
        }

        // Routing phase.
        for original in queued {
            self.route(original);
        }

        // Bookkeeping phase.
        for device in &mut self.devices {
            device.after_tick(&mut self.plant, self.now);
        }

        // Monitor phase.
        for monitor in &mut self.monitors {
            if let Some(event) = monitor.check(self.now, &self.plant) {
                self.hazards.push(event);
            }
        }

        // Record phase.
        self.trace.sample(&self.plant);
    }

    fn route(&mut self, original: BusRequest) {
        if self.bus.decide(&original) == FirewallAction::Deny {
            self.bus.record(BusLogEntry {
                tick: self.now,
                request: original,
                tampered: false,
                outcome: BusOutcome::FirewallDenied,
            });
            return;
        }
        let mut request = original.clone();
        for armed in self.injectors.iter_mut().filter(|a| a.armed) {
            if armed.injector.intercept_request(self.now, &mut request) == Verdict::Drop {
                let by = armed.injector.name().to_owned();
                self.bus.record(BusLogEntry {
                    tick: self.now,
                    request,
                    tampered: true,
                    outcome: BusOutcome::InjectorDropped { by },
                });
                return;
            }
        }
        let tampered = request != original;
        // Protocol-level validation (MODBUS limits): register quantity must
        // be 1..=123 and writes must carry exactly `quantity` values. A
        // malformed request draws an exception response without reaching
        // the device — like a real protocol stack.
        if let Some(code) = validate_request(&request) {
            let response = crate::BusResponse::exception(code);
            if let Some(src_index) = self.devices.iter().position(|d| d.unit_id() == request.src) {
                self.devices[src_index].on_response(&mut self.plant, &request, &response);
            }
            self.bus.record(BusLogEntry {
                tick: self.now,
                request,
                tampered,
                outcome: BusOutcome::Answered(response),
            });
            return;
        }
        let Some(dst_index) = self.devices.iter().position(|d| d.unit_id() == request.dst) else {
            self.bus.record(BusLogEntry {
                tick: self.now,
                request,
                tampered,
                outcome: BusOutcome::NoSuchUnit,
            });
            return;
        };
        let mut response = self.devices[dst_index].handle(&mut self.plant, &request);
        for armed in self.injectors.iter_mut().filter(|a| a.armed) {
            armed
                .injector
                .intercept_response(self.now, &request, &mut response);
        }
        if let Some(src_index) = self.devices.iter().position(|d| d.unit_id() == request.src) {
            self.devices[src_index].on_response(&mut self.plant, &request, &response);
        }
        self.bus.record(BusLogEntry {
            tick: self.now,
            request,
            tampered,
            outcome: BusOutcome::Answered(response),
        });
    }

    /// Advances `ticks` steps.
    pub fn run(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.step();
        }
    }

    /// Runs until a hazard fires or `max_ticks` elapse; returns the first
    /// hazard if one occurred.
    pub fn run_until_hazard(&mut self, max_ticks: u64) -> Option<HazardEvent> {
        for _ in 0..max_ticks {
            let before = self.hazards.len();
            self.step();
            if self.hazards.len() > before {
                return Some(self.hazards[before].clone());
            }
        }
        None
    }

    /// The current tick.
    #[must_use]
    pub fn now(&self) -> Tick {
        self.now
    }

    /// The kernel step in seconds.
    #[must_use]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Elapsed simulated seconds.
    #[must_use]
    pub fn elapsed_seconds(&self) -> f64 {
        self.now.as_seconds(self.dt)
    }

    /// The plant.
    #[must_use]
    pub fn plant(&self) -> &P {
        &self.plant
    }

    /// Mutable access to the plant (scenario setup, fault injection).
    pub fn plant_mut(&mut self) -> &mut P {
        &mut self.plant
    }

    /// The bus (message log, firewall).
    #[must_use]
    pub fn bus(&self) -> &Fieldbus {
        &self.bus
    }

    /// Mutable access to the bus.
    pub fn bus_mut(&mut self) -> &mut Fieldbus {
        &mut self.bus
    }

    /// All hazard events so far, in order of occurrence.
    #[must_use]
    pub fn hazards(&self) -> &[HazardEvent] {
        &self.hazards
    }

    /// The trace recorder.
    #[must_use]
    pub fn trace(&self) -> &TraceRecorder<P> {
        &self.trace
    }

    /// Number of events currently waiting in the kernel's queue (zero
    /// until the first event-engine step primes the schedule).
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Number of registered devices.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Looks up a device's registration index by unit id.
    #[must_use]
    pub fn has_unit(&self, unit: UnitId) -> bool {
        self.devices.iter().any(|d| d.unit_id() == unit)
    }
}

/// MODBUS-style request validation: quantity in `1..=123` and, for
/// writes, a value payload matching the quantity.
fn validate_request(request: &BusRequest) -> Option<crate::ExceptionCode> {
    if request.quantity == 0 || request.quantity > 123 {
        return Some(crate::ExceptionCode::IllegalDataValue);
    }
    if request.function.is_write() && request.values.len() != usize::from(request.quantity) {
        return Some(crate::ExceptionCode::IllegalDataValue);
    }
    None
}

impl<P: fmt::Debug> fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("engine", &self.engine)
            .field("dt", &self.dt)
            .field("devices", &self.devices.len())
            .field("injectors", &self.injectors.len())
            .field("pending_events", &self.queue.len())
            .field("hazards", &self.hazards.len())
            .field("plant", &self.plant)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        BusResponse, DropMatching, ExceptionCode, FirewallRule, RegisterOverride, ResponseOverride,
        TickWindow,
    };

    #[derive(Debug)]
    struct Tank {
        level: f64,
        inflow: f64,
    }

    impl Plant for Tank {
        fn integrate(&mut self, dt: f64) {
            self.level += (self.inflow - 0.1 * self.level) * dt;
        }
    }

    const SENSOR: UnitId = UnitId::new(10);
    const CONTROLLER: UnitId = UnitId::new(1);
    const ACTUATOR: UnitId = UnitId::new(20);

    /// Serves the tank level (scaled x100) at register 0.
    struct LevelSensor;
    impl Device<Tank> for LevelSensor {
        fn unit_id(&self) -> UnitId {
            SENSOR
        }
        fn name(&self) -> &str {
            "level-sensor"
        }
        fn poll(&mut self, _plant: &mut Tank, _outbox: &mut Outbox) {}
        fn handle(&mut self, plant: &mut Tank, request: &BusRequest) -> BusResponse {
            if request.address == 0 && !request.function.is_write() {
                BusResponse::ok(vec![(plant.level * 100.0) as u16])
            } else {
                BusResponse::exception(ExceptionCode::IllegalDataAddress)
            }
        }
    }

    /// Applies register 0 writes (scaled x100) as the inflow command.
    struct InflowValve;
    impl Device<Tank> for InflowValve {
        fn unit_id(&self) -> UnitId {
            ACTUATOR
        }
        fn name(&self) -> &str {
            "inflow-valve"
        }
        fn poll(&mut self, _plant: &mut Tank, _outbox: &mut Outbox) {}
        fn handle(&mut self, plant: &mut Tank, request: &BusRequest) -> BusResponse {
            if request.function.is_write() && request.address == 0 {
                plant.inflow = f64::from(request.values[0]) / 100.0;
                BusResponse::ok(request.values.clone())
            } else {
                BusResponse::exception(ExceptionCode::IllegalFunction)
            }
        }
    }

    /// Bang-bang controller reading the sensor and commanding the valve.
    struct Controller {
        setpoint: f64,
        last_level: f64,
    }
    impl Device<Tank> for Controller {
        fn unit_id(&self) -> UnitId {
            CONTROLLER
        }
        fn name(&self) -> &str {
            "controller"
        }
        fn poll(&mut self, _plant: &mut Tank, outbox: &mut Outbox) {
            outbox.send(BusRequest::read(CONTROLLER, SENSOR, 0, 1));
            let command = if self.last_level < self.setpoint {
                100u16
            } else {
                0
            };
            outbox.send(BusRequest::write(CONTROLLER, ACTUATOR, 0, command));
        }
        fn handle(&mut self, _plant: &mut Tank, _request: &BusRequest) -> BusResponse {
            BusResponse::exception(ExceptionCode::IllegalFunction)
        }
        fn on_response(&mut self, _plant: &mut Tank, request: &BusRequest, response: &BusResponse) {
            if request.dst == SENSOR {
                if let Some(values) = response.values() {
                    self.last_level = f64::from(values[0]) / 100.0;
                }
            }
        }
    }

    fn closed_loop() -> Simulation<Tank> {
        let mut sim = Simulation::new(
            Tank {
                level: 0.0,
                inflow: 0.0,
            },
            0.1,
        );
        sim.add_device(LevelSensor);
        sim.add_device(InflowValve);
        sim.add_device(Controller {
            setpoint: 5.0,
            last_level: 0.0,
        });
        sim
    }

    #[test]
    fn closed_loop_regulates_to_setpoint() {
        let mut sim = closed_loop();
        sim.run(2000);
        assert!(
            (sim.plant().level - 5.0).abs() < 0.5,
            "level {}",
            sim.plant().level
        );
        assert!(sim.bus().message_count() > 0);
    }

    #[test]
    fn duplicate_unit_ids_panic() {
        let mut sim = closed_loop();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.add_device(LevelSensor);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn firewall_denial_is_logged_and_blocks_control() {
        let mut sim = closed_loop();
        sim.set_firewall(
            Firewall::new(FirewallAction::Allow).with_rule(
                FirewallRule::any(FirewallAction::Deny)
                    .from_src(CONTROLLER)
                    .to_dst(ACTUATOR),
            ),
        );
        sim.run(500);
        // The valve never opens, so the tank stays empty.
        assert!(sim.plant().level < 0.1);
        assert!(sim
            .bus()
            .log()
            .iter()
            .any(|e| e.outcome == BusOutcome::FirewallDenied));
    }

    #[test]
    fn register_override_forces_the_actuator() {
        let mut sim = closed_loop();
        // Force every inflow command to zero: the tank can never fill.
        sim.add_injector(RegisterOverride::new(
            "force-closed",
            TickWindow::always(),
            ACTUATOR,
            0,
            0,
        ));
        sim.run(1000);
        assert!(sim.plant().level < 0.1);
        assert!(sim.bus().log().iter().any(|e| e.tampered));
    }

    #[test]
    fn response_override_blinds_the_controller() {
        let mut sim = closed_loop();
        // Spoof the level reading to zero: controller keeps filling forever.
        sim.add_injector(ResponseOverride::new(
            "spoof-level",
            TickWindow::always(),
            SENSOR,
            0,
            0,
        ));
        sim.run(3000);
        assert!(sim.plant().level > 7.0, "level {}", sim.plant().level);
    }

    #[test]
    fn drop_injector_is_attributed_in_the_log() {
        let mut sim = closed_loop();
        sim.add_injector(DropMatching::new("dos", TickWindow::always(), Some(SENSOR)));
        sim.run(10);
        assert!(sim.bus().log().iter().any(|e| matches!(
            &e.outcome,
            BusOutcome::InjectorDropped { by } if by == "dos"
        )));
    }

    #[test]
    fn unknown_destination_is_logged() {
        struct Babbler;
        impl Device<Tank> for Babbler {
            fn unit_id(&self) -> UnitId {
                UnitId::new(99)
            }
            fn name(&self) -> &str {
                "babbler"
            }
            fn poll(&mut self, _plant: &mut Tank, outbox: &mut Outbox) {
                outbox.send(BusRequest::read(UnitId::new(99), UnitId::new(42), 0, 1));
            }
            fn handle(&mut self, _plant: &mut Tank, _req: &BusRequest) -> BusResponse {
                BusResponse::exception(ExceptionCode::IllegalFunction)
            }
        }
        let mut sim = Simulation::new(
            Tank {
                level: 0.0,
                inflow: 0.0,
            },
            0.1,
        );
        sim.add_device(Babbler);
        sim.step();
        assert_eq!(sim.bus().log()[0].outcome, BusOutcome::NoSuchUnit);
    }

    #[test]
    fn monitors_latch_and_run_until_hazard_stops() {
        let mut sim = closed_loop();
        sim.add_monitor(HazardMonitor::new("half-full", |t: &Tank| t.level > 2.5));
        let event = sim.run_until_hazard(5000).expect("tank passes 2.5");
        assert_eq!(event.hazard, "half-full");
        assert_eq!(sim.hazards().len(), 1);
        // Continue running: latched, no further events.
        sim.run(100);
        assert_eq!(sim.hazards().len(), 1);
    }

    #[test]
    fn trace_samples_every_tick() {
        let mut sim = closed_loop();
        sim.probe("level", |t: &Tank| t.level);
        sim.run(50);
        assert_eq!(sim.trace().sample_count(), 50);
        let summary = sim.trace().summary("level").unwrap();
        assert!(summary.max <= 6.0);
    }

    #[test]
    fn determinism_two_identical_runs_agree() {
        let run = || {
            let mut sim = closed_loop();
            sim.probe("level", |t: &Tank| t.level);
            sim.run(500);
            (
                sim.plant().level.to_bits(),
                sim.bus().message_count(),
                sim.trace().series("level").unwrap().to_vec(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn malformed_requests_draw_protocol_exceptions() {
        struct Malformed {
            responses: Vec<BusResponse>,
        }
        impl Device<Tank> for Malformed {
            fn unit_id(&self) -> UnitId {
                UnitId::new(88)
            }
            fn name(&self) -> &str {
                "malformed"
            }
            fn poll(&mut self, _plant: &mut Tank, outbox: &mut Outbox) {
                // Zero quantity, oversized quantity, mismatched payload.
                outbox.send(BusRequest::read(UnitId::new(88), SENSOR, 0, 0));
                outbox.send(BusRequest::read(UnitId::new(88), SENSOR, 0, 500));
                let mut bad_write = BusRequest::write(UnitId::new(88), ACTUATOR, 0, 1);
                bad_write.quantity = 2; // payload has one value
                outbox.send(bad_write);
            }
            fn handle(&mut self, _plant: &mut Tank, _req: &BusRequest) -> BusResponse {
                BusResponse::exception(ExceptionCode::IllegalFunction)
            }
            fn on_response(&mut self, _plant: &mut Tank, _req: &BusRequest, resp: &BusResponse) {
                self.responses.push(resp.clone());
            }
        }
        let mut sim = closed_loop();
        sim.add_device(Malformed {
            responses: Vec::new(),
        });
        sim.step();
        // All three malformed requests were answered with exceptions and
        // never reached a device handler.
        let exceptions = sim
            .bus()
            .log()
            .iter()
            .filter(|e| {
                matches!(
                    &e.outcome,
                    BusOutcome::Answered(BusResponse::Exception(ExceptionCode::IllegalDataValue))
                )
            })
            .count();
        assert_eq!(exceptions, 3);
    }

    #[test]
    fn after_tick_runs_once_per_tick_per_device() {
        struct Counter {
            ticks_seen: u64,
        }
        impl Device<Tank> for Counter {
            fn unit_id(&self) -> UnitId {
                UnitId::new(77)
            }
            fn name(&self) -> &str {
                "counter"
            }
            fn poll(&mut self, _plant: &mut Tank, _outbox: &mut Outbox) {}
            fn handle(&mut self, _plant: &mut Tank, _req: &BusRequest) -> BusResponse {
                BusResponse::exception(ExceptionCode::IllegalFunction)
            }
            fn after_tick(&mut self, plant: &mut Tank, now: Tick) {
                self.ticks_seen += 1;
                assert_eq!(now.count(), self.ticks_seen);
                // Bookkeeping may touch the plant.
                plant.inflow = plant.inflow.max(0.0);
            }
        }
        let mut sim = Simulation::new(
            Tank {
                level: 0.0,
                inflow: 0.0,
            },
            0.1,
        );
        sim.add_device(Counter { ticks_seen: 0 });
        sim.run(25);
        assert_eq!(sim.now().count(), 25);
    }

    #[test]
    fn elapsed_seconds_track_ticks() {
        let mut sim = closed_loop();
        sim.run(100);
        assert_eq!(sim.now(), Tick::new(100));
        assert!((sim.elapsed_seconds() - 10.0).abs() < 1e-9);
        assert!(sim.has_unit(SENSOR));
        assert!(!sim.has_unit(UnitId::new(123)));
        assert_eq!(sim.device_count(), 3);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_is_rejected() {
        let _ = Simulation::new(
            Tank {
                level: 0.0,
                inflow: 0.0,
            },
            0.0,
        );
    }

    /// Runs the closed loop under one engine and fingerprints everything
    /// observable: trace CSV bytes, bus log shape, hazards, plant bits.
    fn fingerprint(engine: KernelEngine, ticks: u64) -> (String, Vec<String>, Vec<String>, u64) {
        let mut sim = closed_loop();
        sim.set_engine(engine);
        sim.probe("level", |t: &Tank| t.level);
        sim.probe("inflow", |t: &Tank| t.inflow);
        sim.add_monitor(HazardMonitor::new("half-full", |t: &Tank| t.level > 2.5));
        sim.add_injector(ResponseOverride::new(
            "nudge",
            TickWindow::between(Tick::new(40), Tick::new(60)),
            SENSOR,
            0,
            0,
        ));
        sim.run(ticks);
        let log: Vec<String> = sim
            .bus()
            .log()
            .iter()
            .map(|e| format!("{} {:?} {:?}", e.tick, e.request, e.outcome))
            .collect();
        let hazards: Vec<String> = sim
            .hazards()
            .iter()
            .map(|h| format!("{}@{}", h.hazard, h.at))
            .collect();
        (
            sim.trace().to_csv(),
            log,
            hazards,
            sim.plant().level.to_bits(),
        )
    }

    #[test]
    fn event_engine_matches_reference_loop_byte_for_byte() {
        let event = fingerprint(KernelEngine::EventQueue, 300);
        let reference = fingerprint(KernelEngine::ReferenceLoop, 300);
        assert_eq!(event.0, reference.0, "trace CSV must be byte-identical");
        assert_eq!(event.1, reference.1, "bus logs must match entry-for-entry");
        assert_eq!(event.2, reference.2, "hazards must match");
        assert_eq!(event.3, reference.3, "plant state must be bit-identical");
    }

    #[test]
    fn poll_period_halves_a_devices_traffic() {
        let mut sim = closed_loop();
        sim.run(100);
        let every_tick = sim.bus().message_count();

        let mut slow = closed_loop();
        slow.set_poll_period(CONTROLLER, 2);
        slow.run(100);
        // The controller is the only requester, so its traffic halves.
        assert_eq!(slow.bus().message_count(), every_tick / 2);
        // The loop still regulates — just with a slower control rate.
        slow.run(3000);
        assert!((slow.plant().level - 5.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "poll period must be at least 1 tick")]
    fn zero_poll_period_is_rejected() {
        let mut sim = closed_loop();
        sim.set_poll_period(CONTROLLER, 0);
    }

    #[test]
    #[should_panic(expected = "no device with unit id")]
    fn poll_period_for_unknown_unit_panics() {
        let mut sim = closed_loop();
        sim.set_poll_period(UnitId::new(200), 1);
    }

    #[test]
    fn devices_added_mid_run_join_the_schedule() {
        struct Chatter {
            polls: u64,
        }
        impl Device<Tank> for Chatter {
            fn unit_id(&self) -> UnitId {
                UnitId::new(66)
            }
            fn name(&self) -> &str {
                "chatter"
            }
            fn poll(&mut self, _plant: &mut Tank, outbox: &mut Outbox) {
                self.polls += 1;
                outbox.send(BusRequest::read(UnitId::new(66), SENSOR, 0, 1));
            }
            fn handle(&mut self, _plant: &mut Tank, _req: &BusRequest) -> BusResponse {
                BusResponse::exception(ExceptionCode::IllegalFunction)
            }
        }
        let mut sim = closed_loop();
        sim.run(10);
        let before = sim.bus().message_count();
        sim.add_device(Chatter { polls: 0 });
        sim.run(10);
        // 2 controller requests + 1 chatter request per tick.
        assert_eq!(sim.bus().message_count(), before + 30);
    }

    #[test]
    fn injector_armed_by_event_stays_dormant_until_its_tick() {
        let mut sim = closed_loop();
        // Window is "always", but arming happens at tick 50: before that
        // the spoof must not bite.
        sim.add_injector_at(
            ResponseOverride::new("late-spoof", TickWindow::always(), SENSOR, 0, 0),
            Tick::new(50),
        );
        sim.run(49);
        assert!(!sim.bus().log().iter().any(|e| e.tampered));
        let level_at_49 = sim.plant().level;
        sim.run(2951);
        // Once armed, the controller is blind and overfills past setpoint.
        assert!(
            sim.plant().level > level_at_49.max(7.0),
            "level {}",
            sim.plant().level
        );
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut sim = closed_loop();
        sim.probe("level", |t: &Tank| t.level);
        sim.set_trace_enabled(false);
        sim.run(50);
        assert_eq!(sim.trace().sample_count(), 0);
        sim.set_trace_enabled(true);
        sim.run(10);
        assert_eq!(sim.trace().sample_count(), 10);
    }

    #[test]
    fn queue_stays_bounded_across_a_long_run() {
        let mut sim = closed_loop();
        sim.run(1);
        let after_one = sim.pending_events();
        sim.run(999);
        // Recurring events replace themselves 1:1 — no growth.
        assert_eq!(sim.pending_events(), after_one);
    }
}
