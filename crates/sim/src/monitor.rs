//! Hazard monitors: latching predicates over the plant state.
//!
//! A hazard monitor is the simulation-side image of a hazard from the
//! safety analysis: a condition on the physical state that, once true,
//! counts as a hazardous excursion regardless of later recovery.

use core::fmt;

use crate::Tick;

/// A recorded hazard occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HazardEvent {
    /// The monitor that fired.
    pub hazard: String,
    /// First tick at which the condition held.
    pub at: Tick,
}

impl fmt::Display for HazardEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hazard `{}` at {}", self.hazard, self.at)
    }
}

/// A named, latching predicate over the plant state.
///
/// The monitor fires at most once (latching); [`HazardMonitor::reset`]
/// re-arms it.
pub struct HazardMonitor<P> {
    name: String,
    predicate: Box<dyn Fn(&P) -> bool + Send>,
    fired_at: Option<Tick>,
}

impl<P> HazardMonitor<P> {
    /// Creates a monitor from a name and predicate.
    ///
    /// # Examples
    ///
    /// ```
    /// use cpssec_sim::HazardMonitor;
    /// struct Plant { temperature: f64 }
    /// let monitor = HazardMonitor::new("overtemperature", |p: &Plant| p.temperature > 80.0);
    /// assert_eq!(monitor.name(), "overtemperature");
    /// ```
    pub fn new(name: impl Into<String>, predicate: impl Fn(&P) -> bool + Send + 'static) -> Self {
        HazardMonitor {
            name: name.into(),
            predicate: Box::new(predicate),
            fired_at: None,
        }
    }

    /// The monitor name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the predicate; returns an event the first time it holds.
    pub fn check(&mut self, now: Tick, plant: &P) -> Option<HazardEvent> {
        if self.fired_at.is_none() && (self.predicate)(plant) {
            self.fired_at = Some(now);
            return Some(HazardEvent {
                hazard: self.name.clone(),
                at: now,
            });
        }
        None
    }

    /// When the monitor fired, if it has.
    #[must_use]
    pub fn fired_at(&self) -> Option<Tick> {
        self.fired_at
    }

    /// Re-arms the monitor.
    pub fn reset(&mut self) {
        self.fired_at = None;
    }
}

impl<P> fmt::Debug for HazardMonitor<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HazardMonitor")
            .field("name", &self.name)
            .field("fired_at", &self.fired_at)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Plant {
        temperature: f64,
    }

    #[test]
    fn monitor_latches_on_first_occurrence() {
        let mut m = HazardMonitor::new("hot", |p: &Plant| p.temperature > 80.0);
        let mut plant = Plant { temperature: 20.0 };
        assert!(m.check(Tick::new(0), &plant).is_none());
        plant.temperature = 99.0;
        let event = m.check(Tick::new(1), &plant).unwrap();
        assert_eq!(event.at, Tick::new(1));
        assert_eq!(event.hazard, "hot");
        // Still true, but latched: no second event.
        assert!(m.check(Tick::new(2), &plant).is_none());
        assert_eq!(m.fired_at(), Some(Tick::new(1)));
    }

    #[test]
    fn recovery_does_not_clear_the_latch() {
        let mut m = HazardMonitor::new("hot", |p: &Plant| p.temperature > 80.0);
        let mut plant = Plant { temperature: 99.0 };
        m.check(Tick::new(0), &plant).unwrap();
        plant.temperature = 20.0;
        assert!(m.check(Tick::new(1), &plant).is_none());
        assert_eq!(m.fired_at(), Some(Tick::new(0)));
    }

    #[test]
    fn reset_rearms() {
        let mut m = HazardMonitor::new("hot", |p: &Plant| p.temperature > 80.0);
        let plant = Plant { temperature: 99.0 };
        m.check(Tick::new(0), &plant).unwrap();
        m.reset();
        assert_eq!(m.fired_at(), None);
        assert!(m.check(Tick::new(5), &plant).is_some());
    }

    #[test]
    fn event_display_names_the_hazard() {
        let e = HazardEvent {
            hazard: "overspeed".into(),
            at: Tick::new(7),
        };
        assert_eq!(e.to_string(), "hazard `overspeed` at t7");
    }
}
