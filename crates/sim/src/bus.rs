//! The fieldbus: MODBUS-flavoured request/response messaging with a
//! zone firewall.
//!
//! The paper's SCADA demonstration interfaces the main centrifuge
//! controller "through MODBUS" behind a "control firewall" that isolates
//! the corporate network from the control network. The bus here models the
//! subset that matters for security analysis: function codes, unit
//! addressing, register reads/writes, exception responses, a rule-based
//! firewall, and a complete message log.

use core::fmt;

use crate::Tick;

/// A bus station address (MODBUS unit identifier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitId(u8);

impl UnitId {
    /// Creates a unit id.
    #[must_use]
    pub const fn new(id: u8) -> Self {
        UnitId(id)
    }

    /// The raw address.
    #[must_use]
    pub fn value(self) -> u8 {
        self.0
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unit{}", self.0)
    }
}

/// The supported function codes (a practical MODBUS subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BusFunction {
    /// Function 03: read `quantity` holding registers from `address`.
    ReadHoldingRegisters,
    /// Function 06: write a single holding register at `address`.
    WriteSingleRegister,
    /// Function 16: write multiple holding registers starting at `address`.
    WriteMultipleRegisters,
}

impl BusFunction {
    /// The MODBUS function code number.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            BusFunction::ReadHoldingRegisters => 3,
            BusFunction::WriteSingleRegister => 6,
            BusFunction::WriteMultipleRegisters => 16,
        }
    }

    /// Whether the function writes device state.
    #[must_use]
    pub fn is_write(self) -> bool {
        !matches!(self, BusFunction::ReadHoldingRegisters)
    }
}

impl fmt::Display for BusFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BusFunction::ReadHoldingRegisters => "read-holding",
            BusFunction::WriteSingleRegister => "write-single",
            BusFunction::WriteMultipleRegisters => "write-multiple",
        };
        write!(f, "{name}(fc{})", self.code())
    }
}

/// One request on the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusRequest {
    /// Requesting station.
    pub src: UnitId,
    /// Target station.
    pub dst: UnitId,
    /// Function code.
    pub function: BusFunction,
    /// Starting register address.
    pub address: u16,
    /// Register count for reads.
    pub quantity: u16,
    /// Register values for writes (empty for reads).
    pub values: Vec<u16>,
}

impl BusRequest {
    /// Builds a read of `quantity` registers.
    #[must_use]
    pub fn read(src: UnitId, dst: UnitId, address: u16, quantity: u16) -> Self {
        BusRequest {
            src,
            dst,
            function: BusFunction::ReadHoldingRegisters,
            address,
            quantity,
            values: Vec::new(),
        }
    }

    /// Builds a single-register write.
    #[must_use]
    pub fn write(src: UnitId, dst: UnitId, address: u16, value: u16) -> Self {
        BusRequest {
            src,
            dst,
            function: BusFunction::WriteSingleRegister,
            address,
            quantity: 1,
            values: vec![value],
        }
    }

    /// Builds a multi-register write.
    #[must_use]
    pub fn write_multiple(src: UnitId, dst: UnitId, address: u16, values: Vec<u16>) -> Self {
        let quantity = values.len() as u16;
        BusRequest {
            src,
            dst,
            function: BusFunction::WriteMultipleRegisters,
            address,
            quantity,
            values,
        }
    }
}

impl fmt::Display for BusRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} {} @{} x{}",
            self.src, self.dst, self.function, self.address, self.quantity
        )
    }
}

/// MODBUS exception codes used by this subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExceptionCode {
    /// 01: the function code is not supported by the target.
    IllegalFunction,
    /// 02: the register address is out of range for the target.
    IllegalDataAddress,
    /// 03: a value is not acceptable for the register.
    IllegalDataValue,
    /// 04: the target failed while servicing the request.
    DeviceFailure,
}

impl ExceptionCode {
    /// The MODBUS exception number.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            ExceptionCode::IllegalFunction => 1,
            ExceptionCode::IllegalDataAddress => 2,
            ExceptionCode::IllegalDataValue => 3,
            ExceptionCode::DeviceFailure => 4,
        }
    }
}

impl fmt::Display for ExceptionCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exception {}", self.code())
    }
}

/// A response to a [`BusRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusResponse {
    /// Successful read: the register values. Successful write: echo of the
    /// written values.
    Ok(Vec<u16>),
    /// The request was rejected or failed.
    Exception(ExceptionCode),
}

impl BusResponse {
    /// A successful response carrying `values`.
    #[must_use]
    pub fn ok(values: Vec<u16>) -> Self {
        BusResponse::Ok(values)
    }

    /// An exception response.
    #[must_use]
    pub fn exception(code: ExceptionCode) -> Self {
        BusResponse::Exception(code)
    }

    /// The payload of a successful response.
    #[must_use]
    pub fn values(&self) -> Option<&[u16]> {
        match self {
            BusResponse::Ok(values) => Some(values),
            BusResponse::Exception(_) => None,
        }
    }

    /// Whether the response is successful.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, BusResponse::Ok(_))
    }
}

/// What the firewall decides for a matching rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirewallAction {
    /// Let the request through.
    Allow,
    /// Silently drop the request (the requester sees no response).
    Deny,
}

/// One firewall rule; `None` fields are wildcards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirewallRule {
    /// Source filter.
    pub src: Option<UnitId>,
    /// Destination filter.
    pub dst: Option<UnitId>,
    /// Restrict to write functions only when `true`.
    pub writes_only: bool,
    /// The decision when the rule matches.
    pub action: FirewallAction,
}

impl FirewallRule {
    /// A rule matching everything.
    #[must_use]
    pub fn any(action: FirewallAction) -> Self {
        FirewallRule {
            src: None,
            dst: None,
            writes_only: false,
            action,
        }
    }

    /// Restricts the rule to a source (builder style).
    #[must_use]
    pub fn from_src(mut self, src: UnitId) -> Self {
        self.src = Some(src);
        self
    }

    /// Restricts the rule to a destination (builder style).
    #[must_use]
    pub fn to_dst(mut self, dst: UnitId) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Restricts the rule to write functions (builder style).
    #[must_use]
    pub fn writes_only(mut self) -> Self {
        self.writes_only = true;
        self
    }

    fn matches(&self, req: &BusRequest) -> bool {
        self.src.map_or(true, |s| s == req.src)
            && self.dst.map_or(true, |d| d == req.dst)
            && (!self.writes_only || req.function.is_write())
    }
}

/// A first-match-wins rule firewall with a default action.
///
/// # Examples
///
/// ```
/// use cpssec_sim::{Firewall, FirewallAction, FirewallRule, BusRequest, UnitId};
///
/// let ws = UnitId::new(1);
/// let plc = UnitId::new(2);
/// let fw = Firewall::new(FirewallAction::Deny)
///     .with_rule(FirewallRule::any(FirewallAction::Allow).from_src(ws).to_dst(plc));
/// assert_eq!(fw.decide(&BusRequest::read(ws, plc, 0, 1)), FirewallAction::Allow);
/// assert_eq!(fw.decide(&BusRequest::read(plc, ws, 0, 1)), FirewallAction::Deny);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firewall {
    rules: Vec<FirewallRule>,
    default: FirewallAction,
    enabled: bool,
}

impl Firewall {
    /// Creates a firewall with no rules and the given default action.
    #[must_use]
    pub fn new(default: FirewallAction) -> Self {
        Firewall {
            rules: Vec::new(),
            default,
            enabled: true,
        }
    }

    /// A firewall that allows everything (the "no firewall" baseline).
    #[must_use]
    pub fn permissive() -> Self {
        Firewall::new(FirewallAction::Allow)
    }

    /// Appends a rule (builder style); earlier rules win.
    #[must_use]
    pub fn with_rule(mut self, rule: FirewallRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Concatenates rule sets: this firewall's rules are evaluated first,
    /// then `other`'s; `other`'s default action and enabled state win.
    /// Useful for prepending scenario-specific allow rules to a baseline
    /// policy.
    #[must_use]
    pub fn merged_with(mut self, other: Firewall) -> Firewall {
        self.rules.extend(other.rules);
        Firewall {
            rules: self.rules,
            default: other.default,
            enabled: other.enabled,
        }
    }

    /// Disables or re-enables the firewall (a disabled firewall allows
    /// everything — the state a firewall-bypass attack produces).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the firewall is enforcing its rules.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Decides the action for a request.
    #[must_use]
    pub fn decide(&self, req: &BusRequest) -> FirewallAction {
        if !self.enabled {
            return FirewallAction::Allow;
        }
        self.rules
            .iter()
            .find(|r| r.matches(req))
            .map_or(self.default, |r| r.action)
    }
}

/// How a logged request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusOutcome {
    /// Delivered and answered.
    Answered(BusResponse),
    /// Dropped by the firewall.
    FirewallDenied,
    /// Dropped by an injector (attack).
    InjectorDropped {
        /// The injector's name.
        by: String,
    },
    /// No device with the destination unit id exists.
    NoSuchUnit,
}

/// One entry of the bus message log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusLogEntry {
    /// When the request was routed.
    pub tick: Tick,
    /// The request as delivered (post-tampering).
    pub request: BusRequest,
    /// Whether an injector modified the request in flight.
    pub tampered: bool,
    /// The outcome.
    pub outcome: BusOutcome,
}

/// The shared medium: firewall plus message log.
#[derive(Debug, Default, Clone)]
pub struct Fieldbus {
    firewall: Option<Firewall>,
    log: Vec<BusLogEntry>,
}

impl Fieldbus {
    /// Creates a bus without a firewall.
    #[must_use]
    pub fn new() -> Self {
        Fieldbus::default()
    }

    /// Installs a firewall.
    pub fn set_firewall(&mut self, firewall: Firewall) {
        self.firewall = Some(firewall);
    }

    /// The installed firewall, if any.
    #[must_use]
    pub fn firewall(&self) -> Option<&Firewall> {
        self.firewall.as_ref()
    }

    /// Mutable access to the installed firewall.
    pub fn firewall_mut(&mut self) -> Option<&mut Firewall> {
        self.firewall.as_mut()
    }

    pub(crate) fn decide(&self, req: &BusRequest) -> FirewallAction {
        self.firewall
            .as_ref()
            .map_or(FirewallAction::Allow, |fw| fw.decide(req))
    }

    pub(crate) fn record(&mut self, entry: BusLogEntry) {
        self.log.push(entry);
    }

    /// The complete message log, oldest first.
    #[must_use]
    pub fn log(&self) -> &[BusLogEntry] {
        &self.log
    }

    /// Number of logged messages.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.log.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units() -> (UnitId, UnitId) {
        (UnitId::new(1), UnitId::new(2))
    }

    #[test]
    fn request_constructors_fill_quantity() {
        let (a, b) = units();
        let r = BusRequest::read(a, b, 10, 2);
        assert_eq!(r.quantity, 2);
        assert!(r.values.is_empty());
        let w = BusRequest::write(a, b, 10, 99);
        assert_eq!(w.values, vec![99]);
        assert_eq!(w.quantity, 1);
        let m = BusRequest::write_multiple(a, b, 10, vec![1, 2, 3]);
        assert_eq!(m.quantity, 3);
    }

    #[test]
    fn function_codes_match_modbus() {
        assert_eq!(BusFunction::ReadHoldingRegisters.code(), 3);
        assert_eq!(BusFunction::WriteSingleRegister.code(), 6);
        assert_eq!(BusFunction::WriteMultipleRegisters.code(), 16);
        assert!(!BusFunction::ReadHoldingRegisters.is_write());
        assert!(BusFunction::WriteMultipleRegisters.is_write());
    }

    #[test]
    fn firewall_first_match_wins() {
        let (a, b) = units();
        let fw = Firewall::new(FirewallAction::Allow)
            .with_rule(
                FirewallRule::any(FirewallAction::Deny)
                    .from_src(a)
                    .writes_only(),
            )
            .with_rule(FirewallRule::any(FirewallAction::Allow).from_src(a));
        assert_eq!(
            fw.decide(&BusRequest::write(a, b, 0, 1)),
            FirewallAction::Deny
        );
        assert_eq!(
            fw.decide(&BusRequest::read(a, b, 0, 1)),
            FirewallAction::Allow
        );
    }

    #[test]
    fn disabled_firewall_allows_everything() {
        let (a, b) = units();
        let mut fw = Firewall::new(FirewallAction::Deny);
        assert_eq!(
            fw.decide(&BusRequest::read(a, b, 0, 1)),
            FirewallAction::Deny
        );
        fw.set_enabled(false);
        assert_eq!(
            fw.decide(&BusRequest::read(a, b, 0, 1)),
            FirewallAction::Allow
        );
        assert!(!fw.is_enabled());
    }

    #[test]
    fn permissive_firewall_is_allow_by_default() {
        let (a, b) = units();
        assert_eq!(
            Firewall::permissive().decide(&BusRequest::write(a, b, 0, 1)),
            FirewallAction::Allow
        );
    }

    #[test]
    fn merged_with_prepends_rules_and_keeps_other_default() {
        let (a, b) = units();
        let baseline = Firewall::new(FirewallAction::Deny)
            .with_rule(FirewallRule::any(FirewallAction::Allow).from_src(b));
        let scenario = Firewall::new(FirewallAction::Allow).with_rule(
            FirewallRule::any(FirewallAction::Allow)
                .from_src(a)
                .to_dst(b),
        );
        let merged = scenario.merged_with(baseline);
        // The scenario's allow rule wins first...
        assert_eq!(
            merged.decide(&BusRequest::write(a, b, 0, 1)),
            FirewallAction::Allow
        );
        // ...the baseline rules still apply...
        assert_eq!(
            merged.decide(&BusRequest::read(b, a, 0, 1)),
            FirewallAction::Allow
        );
        // ...and the baseline's default-deny is preserved.
        let c = UnitId::new(9);
        assert_eq!(
            merged.decide(&BusRequest::read(c, a, 0, 1)),
            FirewallAction::Deny
        );
    }

    #[test]
    fn response_accessors() {
        let ok = BusResponse::ok(vec![7]);
        assert!(ok.is_ok());
        assert_eq!(ok.values(), Some(&[7u16][..]));
        let ex = BusResponse::exception(ExceptionCode::IllegalDataAddress);
        assert!(!ex.is_ok());
        assert_eq!(ex.values(), None);
    }

    #[test]
    fn bus_log_records_in_order() {
        let (a, b) = units();
        let mut bus = Fieldbus::new();
        bus.record(BusLogEntry {
            tick: Tick::new(1),
            request: BusRequest::read(a, b, 0, 1),
            tampered: false,
            outcome: BusOutcome::NoSuchUnit,
        });
        bus.record(BusLogEntry {
            tick: Tick::new(2),
            request: BusRequest::write(a, b, 0, 5),
            tampered: true,
            outcome: BusOutcome::Answered(BusResponse::ok(vec![5])),
        });
        assert_eq!(bus.message_count(), 2);
        assert!(bus.log()[0].tick < bus.log()[1].tick);
        assert!(bus.log()[1].tampered);
    }

    #[test]
    fn display_formats_are_informative() {
        let (a, b) = units();
        let text = BusRequest::write(a, b, 40, 1).to_string();
        assert!(text.contains("unit1"));
        assert!(text.contains("fc6"));
        assert!(text.contains("@40"));
    }
}
