//! The min-heap event queue at the core of the kernel.
//!
//! Discrete-event simulation orders work by *time*, not by a fixed outer
//! loop: every piece of work is a scheduled event in a priority queue,
//! and the kernel repeatedly pops the earliest one. [`EventQueue`] is
//! that queue — a [`BinaryHeap`] of [`Tick`]-stamped entries with two
//! refinements the kernel's determinism contract needs:
//!
//! * an explicit **class** (a `u8` phase rank) orders events that share
//!   a tick — plant integration before device polls before bus routing
//!   before bookkeeping before monitors before trace recording;
//! * a monotone **sequence number** breaks the remaining ties FIFO, so
//!   two events scheduled at the same `(tick, class)` pop in the order
//!   they were pushed. Registration order in, registration order out —
//!   the property the fixed-tick kernel got for free from its `for`
//!   loops, preserved here by construction.
//!
//! With every recurring event scheduled at period 1, draining the queue
//! tick by tick replays the fixed-step kernel exactly; longer periods
//! skip work without perturbing the order of what remains.

use core::fmt;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Tick;

/// One queued event: its due tick, phase class, FIFO sequence, payload.
struct Scheduled<E> {
    at: Tick,
    class: u8,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on every key: the `BinaryHeap` is a max-heap, so
        // "smaller (at, class, seq) wins" must read as "greater".
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of [`Tick`]-scheduled events.
///
/// Pop order is `(tick, class, push order)` — earliest tick first, then
/// lowest class, then first-in-first-out among exact ties.
///
/// # Examples
///
/// ```
/// use cpssec_sim::{EventQueue, Tick};
/// let mut q = EventQueue::new();
/// q.schedule(Tick::new(5), 0, "late");
/// q.schedule(Tick::new(2), 1, "early-b");
/// q.schedule(Tick::new(2), 0, "early-a");
/// assert_eq!(q.pop().unwrap().2, "early-a");
/// assert_eq!(q.pop().unwrap().2, "early-b");
/// assert_eq!(q.pop().unwrap().2, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `(at, class)`, behind any event already
    /// scheduled at the same tick and class.
    pub fn schedule(&mut self, at: Tick, class: u8, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            class,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event as `(tick, class, event)`.
    pub fn pop(&mut self) -> Option<(Tick, u8, E)> {
        self.heap.pop().map(|s| (s.at, s.class, s.event))
    }

    /// The due tick of the earliest event without removing it.
    #[must_use]
    pub fn peek_tick(&self) -> Option<Tick> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Tick) -> Option<(Tick, u8, E)> {
        if self.peek_tick()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (the FIFO sequence high-water mark).
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next", &self.peek_tick())
            .field("scheduled_total", &self.seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_tick_order() {
        let mut q = EventQueue::new();
        for t in [9u64, 3, 7, 1, 5] {
            q.schedule(Tick::new(t), 0, t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, [1, 3, 5, 7, 9]);
    }

    #[test]
    fn class_orders_within_a_tick() {
        let mut q = EventQueue::new();
        q.schedule(Tick::new(4), 3, "monitor");
        q.schedule(Tick::new(4), 0, "integrate");
        q.schedule(Tick::new(4), 1, "poll");
        q.schedule(Tick::new(4), 2, "route");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, ["integrate", "poll", "route", "monitor"]);
    }

    #[test]
    fn exact_ties_pop_fifo() {
        let mut q = EventQueue::new();
        for name in ["a", "b", "c", "d", "e"] {
            q.schedule(Tick::new(2), 1, name);
        }
        // Interleave an earlier event to stir the heap.
        q.schedule(Tick::new(1), 1, "first");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, ["first", "a", "b", "c", "d", "e"]);
    }

    #[test]
    fn fifo_survives_heavy_interleaving() {
        // Push tied events in several rounds with pops in between; the
        // relative order of the survivors must stay push order.
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(Tick::new(u64::from(i % 5)), (i % 3) as u8, i);
        }
        let mut popped: Vec<(Tick, u8, u32)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        let mut sorted = popped.clone();
        sorted.sort_by_key(|&(at, class, i)| (at, class, i));
        assert_eq!(popped, sorted, "push index must break all ties FIFO");
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.schedule(Tick::new(3), 0, "later");
        q.schedule(Tick::new(1), 0, "now");
        assert_eq!(q.pop_due(Tick::new(1)).unwrap().2, "now");
        assert_eq!(q.pop_due(Tick::new(1)), None);
        assert_eq!(q.peek_tick(), Some(Tick::new(3)));
        assert_eq!(q.pop_due(Tick::new(5)).unwrap().2, "later");
        assert!(q.is_empty());
    }

    #[test]
    fn counters_track_scheduling() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Tick::ZERO, 0, ());
        q.schedule(Tick::ZERO, 0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        let _ = q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
