//! Devices: the digital stations on the bus.

use crate::{BusRequest, BusResponse, Tick, UnitId};

/// Requests queued by a device during its poll phase.
///
/// The kernel routes queued requests after every device has polled, in
/// queue order, and delivers responses through
/// [`Device::on_response`] within the same tick.
#[derive(Debug, Default)]
pub struct Outbox {
    pub(crate) requests: Vec<BusRequest>,
}

impl Outbox {
    /// Queues a request for routing this tick.
    pub fn send(&mut self, request: BusRequest) {
        self.requests.push(request);
    }

    /// The queued requests, in send order.
    #[must_use]
    pub fn requests(&self) -> &[BusRequest] {
        &self.requests
    }

    /// Number of queued requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// A digital station coupled to the plant and the bus.
///
/// The kernel calls, per tick and in registration order:
///
/// 1. [`poll`](Device::poll) — do physical I/O against the plant and queue
///    bus requests;
/// 2. [`handle`](Device::handle) — answer requests addressed to this unit;
/// 3. [`on_response`](Device::on_response) — receive answers to requests
///    queued in step 1.
///
/// `P` is the concrete plant type the device reads from or actuates.
pub trait Device<P> {
    /// The station address. Must be unique within a simulation.
    fn unit_id(&self) -> UnitId;

    /// A short human-readable name for logs and traces.
    fn name(&self) -> &str;

    /// Physical I/O and request generation for this tick.
    fn poll(&mut self, plant: &mut P, outbox: &mut Outbox);

    /// Services a request addressed to this unit.
    fn handle(&mut self, plant: &mut P, request: &BusRequest) -> BusResponse;

    /// Receives the response to a request this device queued. The default
    /// ignores responses (write-and-forget devices).
    fn on_response(&mut self, plant: &mut P, request: &BusRequest, response: &BusResponse) {
        let _ = (plant, request, response);
    }

    /// Called once per tick after routing, for internal bookkeeping.
    /// The default does nothing.
    fn after_tick(&mut self, plant: &mut P, now: Tick) {
        let _ = (plant, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_preserves_order() {
        let a = UnitId::new(1);
        let b = UnitId::new(2);
        let mut outbox = Outbox::default();
        assert!(outbox.is_empty());
        outbox.send(BusRequest::read(a, b, 0, 1));
        outbox.send(BusRequest::write(a, b, 4, 9));
        assert_eq!(outbox.len(), 2);
        assert_eq!(outbox.requests[0].address, 0);
        assert_eq!(outbox.requests[1].address, 4);
    }
}
