//! Simulation time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A discrete simulation instant, counted in kernel steps from zero.
///
/// # Examples
///
/// ```
/// use cpssec_sim::Tick;
/// let t = Tick::new(10) + 5;
/// assert_eq!(t, Tick::new(15));
/// assert_eq!(t.as_seconds(0.1), 1.5);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tick(u64);

impl Tick {
    /// The start of time.
    pub const ZERO: Tick = Tick(0);

    /// Creates a tick from a step count.
    #[must_use]
    pub fn new(steps: u64) -> Self {
        Tick(steps)
    }

    /// The raw step count.
    #[must_use]
    pub fn count(self) -> u64 {
        self.0
    }

    /// Converts to seconds given the kernel step size.
    #[must_use]
    pub fn as_seconds(self, dt: f64) -> f64 {
        self.0 as f64 * dt
    }

    /// The next tick.
    ///
    /// # Panics
    ///
    /// Panics if the step count would overflow `u64`. Long-running fleet
    /// campaigns step simulations billions of times in release builds,
    /// where plain `+` wraps silently back to `Tick::ZERO` and corrupts
    /// every downstream window comparison — overflow is always a bug
    /// here, so it fails loudly instead.
    #[must_use]
    pub fn next(self) -> Tick {
        Tick(
            self.0
                .checked_add(1)
                .expect("tick overflow: simulation exceeded 2^64-1 steps"),
        )
    }
}

impl Add<u64> for Tick {
    type Output = Tick;

    /// # Panics
    ///
    /// Panics on overflow — see [`Tick::next`].
    fn add(self, rhs: u64) -> Tick {
        Tick(
            self.0
                .checked_add(rhs)
                .expect("tick overflow: tick + offset exceeds 2^64-1 steps"),
        )
    }
}

impl AddAssign<u64> for Tick {
    /// # Panics
    ///
    /// Panics on overflow — see [`Tick::next`].
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self
            .0
            .checked_add(rhs)
            .expect("tick overflow: tick + offset exceeds 2^64-1 steps");
    }
}

impl Sub<Tick> for Tick {
    type Output = u64;

    /// Elapsed steps between two ticks.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: Tick) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("subtracting a later tick from an earlier one")
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_counters() {
        let mut t = Tick::ZERO;
        t += 3;
        assert_eq!(t, Tick::new(3));
        assert_eq!(t.next(), Tick::new(4));
        assert_eq!(Tick::new(10) - Tick::new(4), 6);
    }

    #[test]
    #[should_panic(expected = "subtracting a later tick")]
    fn negative_elapsed_panics() {
        let _ = Tick::new(1) - Tick::new(2);
    }

    #[test]
    #[should_panic(expected = "tick overflow")]
    fn next_at_u64_max_panics_instead_of_wrapping() {
        let _ = Tick::new(u64::MAX).next();
    }

    #[test]
    #[should_panic(expected = "tick overflow")]
    fn add_overflow_panics_instead_of_wrapping() {
        let _ = Tick::new(u64::MAX - 1) + 2;
    }

    #[test]
    #[should_panic(expected = "tick overflow")]
    fn add_assign_overflow_panics_instead_of_wrapping() {
        let mut t = Tick::new(u64::MAX);
        t += 1;
    }

    #[test]
    fn add_at_the_boundary_still_works() {
        assert_eq!(Tick::new(u64::MAX - 1).next(), Tick::new(u64::MAX));
        assert_eq!(Tick::new(u64::MAX - 5) + 5, Tick::new(u64::MAX));
    }

    #[test]
    fn seconds_scale_with_dt() {
        assert_eq!(Tick::new(100).as_seconds(0.01), 1.0);
        assert_eq!(Tick::ZERO.as_seconds(5.0), 0.0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Tick::new(42).to_string(), "t42");
    }
}
