//! Deterministic parallel scenario fleets.
//!
//! A fleet is N independent scenario runs driven by one **campaign
//! seed**. Each scenario's private seed is derived with a SplitMix64
//! mix of the campaign seed and the scenario index, so:
//!
//! * scenario *i* can be re-run standalone, bit-for-bit, given only
//!   `(campaign_seed, i)` — no need to replay scenarios `0..i`;
//! * results are a pure function of `(index, seed)` and are merged back
//!   in index order, so the output is identical at any thread count.
//!
//! Work is distributed over [`std::thread::scope`] with an atomic
//! work-stealing index: threads race for indices, but every result is
//! tagged with its index and the merge sorts them back, so scheduling
//! nondeterminism never leaks into the output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

/// Golden-ratio increment used by SplitMix64 (`2^64 / φ`, odd).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A tiny, fast, well-mixed PRNG (SplitMix64). One instance per
/// scenario, seeded by [`derive_seed`]; good enough for Monte Carlo
/// parameter draws and cheap enough to build per scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `[lo, hi)` via the widening-multiply range reduction.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        let wide = u128::from(self.next_u64()) * u128::from(span);
        lo + (wide >> 64) as u64
    }

    /// A draw in `[0.0, 1.0)` with 53 random bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives scenario `index`'s private seed from the campaign seed.
///
/// This is the SplitMix64 output function applied at an offset of
/// `index + 1` gammas — equivalent to jumping a SplitMix64 stream
/// directly to its `index`-th draw, which is what makes per-scenario
/// replay O(1) instead of O(index).
#[must_use]
pub fn derive_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed.wrapping_add(GOLDEN_GAMMA.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `count` scenarios across `threads` OS threads and returns the
/// results in index order.
///
/// `scenario` is called as `scenario(index, seed)` with the seed from
/// [`derive_seed`]; it must be a pure function of those two arguments
/// for the determinism guarantee to hold. `progress`, when given, is
/// incremented once per completed scenario (for live polling from
/// another thread).
///
/// # Panics
///
/// Panics if `threads` is zero, or if a worker thread panics.
pub fn run_fleet<R, F>(
    count: u64,
    campaign_seed: u64,
    threads: usize,
    progress: Option<&AtomicU64>,
    scenario: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(u64, u64) -> R + Sync,
{
    assert!(threads >= 1, "fleet needs at least one thread");
    let next = AtomicU64::new(0);
    let mut results: Vec<(u64, R)> = Vec::with_capacity(count as usize);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let scenario = &scenario;
            handles.push(scope.spawn(move || {
                let mut mine: Vec<(u64, R)> = Vec::new();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= count {
                        break;
                    }
                    let seed = derive_seed(campaign_seed, index);
                    mine.push((index, scenario(index, seed)));
                    if let Some(p) = progress {
                        p.fetch_add(1, Ordering::Relaxed);
                    }
                }
                mine
            }));
        }
        for handle in handles {
            results.extend(handle.join().expect("fleet worker panicked"));
        }
    });
    results.sort_by_key(|&(index, _)| index);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let draws: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(draws, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        // Adjacent seeds decorrelate.
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(100, 3000);
            assert!((100..3000).contains(&v));
        }
        let mut hits = [false; 5];
        let mut rng = SplitMix64::new(9);
        for _ in 0..200 {
            hits[rng.gen_range(0, 5) as usize] = true;
        }
        assert!(hits.iter().all(|&h| h), "all buckets reachable");
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = SplitMix64::new(0).gen_range(5, 5);
    }

    #[test]
    fn derived_seeds_are_order_free_and_distinct() {
        let forward: Vec<u64> = (0..64).map(|i| derive_seed(99, i)).collect();
        let backward: Vec<u64> = (0..64).rev().map(|i| derive_seed(99, i)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "seed i depends only on (campaign, i)"
        );
        let mut sorted = forward.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), forward.len(), "no collisions in 64 seeds");
    }

    #[test]
    fn fleet_results_are_identical_at_any_thread_count() {
        let run = |threads| {
            run_fleet(200, 1234, threads, None, |index, seed| {
                let mut rng = SplitMix64::new(seed);
                (index, rng.gen_range(0, 1_000_000))
            })
        };
        let single = run(1);
        assert_eq!(single, run(2));
        assert_eq!(single, run(7));
        // Results come back in index order.
        assert!(single.windows(2).all(|w| w[0].0 + 1 == w[1].0));
    }

    #[test]
    fn standalone_replay_matches_in_fleet_result() {
        let fleet = run_fleet(50, 777, 4, None, |_, seed| {
            SplitMix64::new(seed).gen_range(0, 1_000)
        });
        let replay_17 = SplitMix64::new(derive_seed(777, 17)).gen_range(0, 1_000);
        assert_eq!(fleet[17], replay_17);
    }

    #[test]
    fn progress_counts_every_scenario() {
        let progress = AtomicU64::new(0);
        let results = run_fleet(30, 5, 3, Some(&progress), |i, _| i);
        assert_eq!(progress.load(Ordering::Relaxed), 30);
        assert_eq!(results.len(), 30);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        let _ = run_fleet(1, 0, 0, None, |i, _| i);
    }
}
