//! Time-series recording of plant signals.

use core::fmt;

/// Summary statistics of one recorded series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSummary {
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Last sample.
    pub last: f64,
    /// Number of samples.
    pub samples: usize,
}

/// A boxed probe reading one scalar from the plant state.
type Probe<P> = Box<dyn Fn(&P) -> f64 + Send>;

/// Records named probes of the plant state every tick.
///
/// Probes are registered before the run; each tick appends one sample per
/// probe. Columns share one length by construction.
pub struct TraceRecorder<P> {
    names: Vec<String>,
    probes: Vec<Probe<P>>,
    columns: Vec<Vec<f64>>,
    enabled: bool,
}

impl<P> Default for TraceRecorder<P> {
    fn default() -> Self {
        TraceRecorder {
            names: Vec::new(),
            probes: Vec::new(),
            columns: Vec::new(),
            enabled: true,
        }
    }
}

impl<P> TraceRecorder<P> {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Registers a probe.
    ///
    /// # Examples
    ///
    /// ```
    /// use cpssec_sim::TraceRecorder;
    /// struct Plant { rpm: f64 }
    /// let mut trace = TraceRecorder::new();
    /// trace.probe("rpm", |p: &Plant| p.rpm);
    /// trace.sample(&Plant { rpm: 1000.0 });
    /// assert_eq!(trace.series("rpm").unwrap(), &[1000.0]);
    /// ```
    pub fn probe(&mut self, name: impl Into<String>, probe: impl Fn(&P) -> f64 + Send + 'static) {
        self.names.push(name.into());
        self.probes.push(Box::new(probe));
        self.columns.push(Vec::new());
    }

    /// Samples every probe once (a no-op while disabled).
    pub fn sample(&mut self, plant: &P) {
        if !self.enabled {
            return;
        }
        for (probe, column) in self.probes.iter().zip(self.columns.iter_mut()) {
            column.push(probe(plant));
        }
    }

    /// Turns sampling on or off. Fleet campaigns run thousands of
    /// scenarios and only need hazard outcomes, so they switch recording
    /// off rather than paying for columns nobody reads.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether sampling is currently on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The recorded series for a probe name.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.columns[i].as_slice())
    }

    /// Registered probe names in registration order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of samples taken so far.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Summary statistics for one probe, or `None` for unknown names or
    /// empty traces.
    #[must_use]
    pub fn summary(&self, name: &str) -> Option<SeriesSummary> {
        let series = self.series(name)?;
        if series.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in series {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Some(SeriesSummary {
            min,
            max,
            mean: sum / series.len() as f64,
            last: *series.last().expect("nonempty"),
            samples: series.len(),
        })
    }

    /// Renders the whole trace as CSV with a header row.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.names.join(","));
        out.push('\n');
        for row in 0..self.sample_count() {
            let line: Vec<String> = self
                .columns
                .iter()
                .map(|col| format!("{}", col[row]))
                .collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

impl<P> fmt::Debug for TraceRecorder<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("names", &self.names)
            .field("samples", &self.sample_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Plant {
        rpm: f64,
        temp: f64,
    }

    fn recorded() -> TraceRecorder<Plant> {
        let mut t = TraceRecorder::new();
        t.probe("rpm", |p: &Plant| p.rpm);
        t.probe("temp", |p: &Plant| p.temp);
        for i in 0..5 {
            t.sample(&Plant {
                rpm: 1000.0 + i as f64,
                temp: 20.0 - i as f64,
            });
        }
        t
    }

    #[test]
    fn columns_stay_aligned() {
        let t = recorded();
        assert_eq!(t.sample_count(), 5);
        assert_eq!(t.series("rpm").unwrap().len(), 5);
        assert_eq!(t.series("temp").unwrap().len(), 5);
        assert_eq!(t.series("ghost"), None);
    }

    #[test]
    fn summary_computes_min_max_mean_last() {
        let s = recorded().summary("rpm").unwrap();
        assert_eq!(s.min, 1000.0);
        assert_eq!(s.max, 1004.0);
        assert_eq!(s.mean, 1002.0);
        assert_eq!(s.last, 1004.0);
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn empty_trace_has_no_summary() {
        let mut t: TraceRecorder<Plant> = TraceRecorder::new();
        t.probe("rpm", |p| p.rpm);
        assert_eq!(t.summary("rpm"), None);
        assert_eq!(t.sample_count(), 0);
    }

    #[test]
    fn disabled_recorder_skips_samples() {
        let mut t: TraceRecorder<Plant> = TraceRecorder::new();
        t.probe("rpm", |p| p.rpm);
        assert!(t.is_enabled());
        t.set_enabled(false);
        t.sample(&Plant {
            rpm: 1.0,
            temp: 1.0,
        });
        assert_eq!(t.sample_count(), 0);
        t.set_enabled(true);
        t.sample(&Plant {
            rpm: 2.0,
            temp: 2.0,
        });
        assert_eq!(t.series("rpm").unwrap(), &[2.0]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = recorded().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "rpm,temp");
        assert_eq!(lines.len(), 6);
        assert!(lines[1].starts_with("1000,20"));
    }
}
