//! Controllers.

/// A discrete PID controller with output clamping and conditional
/// anti-windup (integration pauses while the output saturates).
///
/// # Examples
///
/// ```
/// use cpssec_sim::Pid;
///
/// let mut pid = Pid::new(2.0, 0.5, 0.0).with_output_limits(0.0, 10.0);
/// let mut value = 0.0;
/// for _ in 0..20_000 {
///     let u = pid.update(5.0, value, 0.01);
///     value += (u - 0.5 * value) * 0.01; // first-order plant
/// }
/// assert!((value - 5.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pid {
    kp: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    previous_error: Option<f64>,
    output_min: f64,
    output_max: f64,
}

impl Pid {
    /// Creates a controller with the given gains and unbounded output.
    #[must_use]
    pub fn new(kp: f64, ki: f64, kd: f64) -> Self {
        Pid {
            kp,
            ki,
            kd,
            integral: 0.0,
            previous_error: None,
            output_min: f64::NEG_INFINITY,
            output_max: f64::INFINITY,
        }
    }

    /// Clamps the output to `[min, max]` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    #[must_use]
    pub fn with_output_limits(mut self, min: f64, max: f64) -> Self {
        assert!(min <= max, "output limits inverted: {min} > {max}");
        self.output_min = min;
        self.output_max = max;
        self
    }

    /// Advances the controller by one step of `dt` seconds and returns the
    /// clamped output.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn update(&mut self, setpoint: f64, measurement: f64, dt: f64) -> f64 {
        assert!(dt > 0.0, "dt must be positive");
        let error = setpoint - measurement;
        let derivative = match self.previous_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.previous_error = Some(error);

        let tentative_integral = self.integral + error * dt;
        let unclamped = self.kp * error + self.ki * tentative_integral + self.kd * derivative;
        let output = unclamped.clamp(self.output_min, self.output_max);
        // Conditional anti-windup: only accumulate when not pushing further
        // into saturation.
        if (output - unclamped).abs() < f64::EPSILON
            || (unclamped > self.output_max && error < 0.0)
            || (unclamped < self.output_min && error > 0.0)
        {
            self.integral = tentative_integral;
        }
        output
    }

    /// Resets the internal state (integral and derivative memory).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.previous_error = None;
    }

    /// The accumulated integral term (for diagnostics).
    #[must_use]
    pub fn integral(&self) -> f64 {
        self.integral
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle(pid: &mut Pid, setpoint: f64, steps: usize) -> f64 {
        let mut value = 0.0;
        for _ in 0..steps {
            let u = pid.update(setpoint, value, 0.01);
            value += (u - 0.5 * value) * 0.01;
        }
        value
    }

    #[test]
    fn proportional_only_leaves_steady_state_error() {
        let mut pid = Pid::new(1.0, 0.0, 0.0);
        let value = settle(&mut pid, 10.0, 5000);
        assert!(
            value < 10.0 - 0.5,
            "P-only should not reach setpoint: {value}"
        );
        assert!(value > 5.0);
    }

    #[test]
    fn integral_removes_steady_state_error() {
        let mut pid = Pid::new(1.0, 0.5, 0.0);
        let value = settle(&mut pid, 10.0, 20_000);
        assert!((value - 10.0).abs() < 0.05, "PI should converge: {value}");
    }

    #[test]
    fn output_respects_limits() {
        let mut pid = Pid::new(100.0, 0.0, 0.0).with_output_limits(-1.0, 1.0);
        assert_eq!(pid.update(1000.0, 0.0, 0.01), 1.0);
        assert_eq!(pid.update(-1000.0, 0.0, 0.01), -1.0);
    }

    #[test]
    fn anti_windup_recovers_quickly() {
        // Saturate hard, then flip the setpoint; without anti-windup the
        // integral would keep the output pinned for a long time.
        let mut pid = Pid::new(0.1, 2.0, 0.0).with_output_limits(-1.0, 1.0);
        for _ in 0..1000 {
            pid.update(100.0, 0.0, 0.01);
        }
        let integral_at_saturation = pid.integral();
        for _ in 0..1000 {
            pid.update(100.0, 0.0, 0.01);
        }
        // Integral must not have grown while saturated.
        assert!((pid.integral() - integral_at_saturation).abs() < 1.0);
    }

    #[test]
    fn reset_clears_memory() {
        let mut pid = Pid::new(1.0, 1.0, 1.0);
        pid.update(5.0, 0.0, 0.1);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        // First update after reset has no derivative kick.
        let out = pid.update(1.0, 0.0, 0.1);
        assert!(out < 2.0);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_is_rejected() {
        Pid::new(1.0, 0.0, 0.0).update(1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "output limits inverted")]
    fn inverted_limits_are_rejected() {
        let _ = Pid::new(1.0, 0.0, 0.0).with_output_limits(1.0, -1.0);
    }
}
