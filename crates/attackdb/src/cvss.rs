//! CVSS v3.1 base metrics, implemented from the FIRST specification.
//!
//! The paper cautions that "CVSS only defines severity of a given
//! vulnerability and not risk" — we implement it anyway because severity is
//! what the corpus records carry and what result filtering buckets by, and
//! we keep the paper's framing by exposing it as [`Severity`], never as a
//! risk number.

use core::fmt;
use core::str::FromStr;

/// Error parsing a CVSS v3.1 vector string.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CvssError {
    /// The string did not start with `CVSS:3.0/` or `CVSS:3.1/`.
    BadPrefix(String),
    /// A metric group was not `KEY:VALUE`.
    BadMetric(String),
    /// A metric value was not valid for its key.
    BadValue {
        /// The metric key.
        key: String,
        /// The offending value.
        value: String,
    },
    /// A mandatory base metric was missing.
    Missing(&'static str),
    /// The same metric appeared twice.
    Duplicate(String),
}

impl fmt::Display for CvssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CvssError::BadPrefix(s) => write!(f, "vector `{s}` does not start with CVSS:3.x/"),
            CvssError::BadMetric(s) => write!(f, "malformed metric `{s}`"),
            CvssError::BadValue { key, value } => {
                write!(f, "value `{value}` is not valid for metric `{key}`")
            }
            CvssError::Missing(key) => write!(f, "mandatory metric `{key}` is missing"),
            CvssError::Duplicate(key) => write!(f, "metric `{key}` appears more than once"),
        }
    }
}

impl std::error::Error for CvssError {}

/// Attack Vector (AV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AttackVectorMetric {
    /// Network (`N`).
    Network,
    /// Adjacent (`A`).
    Adjacent,
    /// Local (`L`).
    Local,
    /// Physical (`P`).
    Physical,
}

/// Attack Complexity (AC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AttackComplexity {
    /// Low (`L`).
    Low,
    /// High (`H`).
    High,
}

/// Privileges Required (PR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PrivilegesRequired {
    /// None (`N`).
    None,
    /// Low (`L`).
    Low,
    /// High (`H`).
    High,
}

/// User Interaction (UI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum UserInteraction {
    /// None (`N`).
    None,
    /// Required (`R`).
    Required,
}

/// Scope (S).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scope {
    /// Unchanged (`U`).
    Unchanged,
    /// Changed (`C`).
    Changed,
}

/// Impact level for Confidentiality, Integrity and Availability (C/I/A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Impact {
    /// None (`N`).
    None,
    /// Low (`L`).
    Low,
    /// High (`H`).
    High,
}

/// Qualitative severity rating per the v3.1 specification, §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Severity {
    /// Score 0.0.
    None,
    /// Score 0.1–3.9.
    Low,
    /// Score 4.0–6.9.
    Medium,
    /// Score 7.0–8.9.
    High,
    /// Score 9.0–10.0.
    Critical,
}

impl Severity {
    /// Maps a base score to its rating band.
    ///
    /// # Panics
    ///
    /// Panics if `score` is outside `[0, 10]`, which [`CvssVector::base_score`]
    /// never produces.
    #[must_use]
    pub fn from_score(score: f64) -> Severity {
        assert!((0.0..=10.0).contains(&score), "score {score} out of range");
        if score == 0.0 {
            Severity::None
        } else if score < 4.0 {
            Severity::Low
        } else if score < 7.0 {
            Severity::Medium
        } else if score < 9.0 {
            Severity::High
        } else {
            Severity::Critical
        }
    }

    /// Canonical capitalized name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::None => "None",
            Severity::Low => "Low",
            Severity::Medium => "Medium",
            Severity::High => "High",
            Severity::Critical => "Critical",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A complete set of CVSS v3.1 base metrics.
///
/// # Examples
///
/// ```
/// use cpssec_attackdb::{CvssVector, Severity};
///
/// let v: CvssVector = "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H".parse()?;
/// assert_eq!(v.base_score(), 9.8);
/// assert_eq!(v.severity(), Severity::Critical);
/// # Ok::<(), cpssec_attackdb::CvssError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CvssVector {
    /// Attack Vector.
    pub av: AttackVectorMetric,
    /// Attack Complexity.
    pub ac: AttackComplexity,
    /// Privileges Required.
    pub pr: PrivilegesRequired,
    /// User Interaction.
    pub ui: UserInteraction,
    /// Scope.
    pub s: Scope,
    /// Confidentiality impact.
    pub c: Impact,
    /// Integrity impact.
    pub i: Impact,
    /// Availability impact.
    pub a: Impact,
}

impl CvssVector {
    /// The base score in `[0.0, 10.0]`, per specification §7.1.
    #[must_use]
    pub fn base_score(&self) -> f64 {
        let iss = 1.0
            - (1.0 - impact_weight(self.c))
                * (1.0 - impact_weight(self.i))
                * (1.0 - impact_weight(self.a));
        let impact = match self.s {
            Scope::Unchanged => 6.42 * iss,
            Scope::Changed => 7.52 * (iss - 0.029) - 3.25 * (iss - 0.02).powi(15),
        };
        if impact <= 0.0 {
            return 0.0;
        }
        let exploitability = 8.22
            * av_weight(self.av)
            * ac_weight(self.ac)
            * pr_weight(self.pr, self.s)
            * ui_weight(self.ui);
        let raw = match self.s {
            Scope::Unchanged => (impact + exploitability).min(10.0),
            Scope::Changed => (1.08 * (impact + exploitability)).min(10.0),
        };
        round_up(raw)
    }

    /// The qualitative rating for the base score.
    #[must_use]
    pub fn severity(&self) -> Severity {
        Severity::from_score(self.base_score())
    }

    /// The exploitability subscore (unrounded), §7.1.
    #[must_use]
    pub fn exploitability(&self) -> f64 {
        8.22 * av_weight(self.av)
            * ac_weight(self.ac)
            * pr_weight(self.pr, self.s)
            * ui_weight(self.ui)
    }
}

impl fmt::Display for CvssVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CVSS:3.1/AV:{}/AC:{}/PR:{}/UI:{}/S:{}/C:{}/I:{}/A:{}",
            match self.av {
                AttackVectorMetric::Network => "N",
                AttackVectorMetric::Adjacent => "A",
                AttackVectorMetric::Local => "L",
                AttackVectorMetric::Physical => "P",
            },
            match self.ac {
                AttackComplexity::Low => "L",
                AttackComplexity::High => "H",
            },
            match self.pr {
                PrivilegesRequired::None => "N",
                PrivilegesRequired::Low => "L",
                PrivilegesRequired::High => "H",
            },
            match self.ui {
                UserInteraction::None => "N",
                UserInteraction::Required => "R",
            },
            match self.s {
                Scope::Unchanged => "U",
                Scope::Changed => "C",
            },
            impact_letter(self.c),
            impact_letter(self.i),
            impact_letter(self.a),
        )
    }
}

fn impact_letter(i: Impact) -> &'static str {
    match i {
        Impact::None => "N",
        Impact::Low => "L",
        Impact::High => "H",
    }
}

fn av_weight(av: AttackVectorMetric) -> f64 {
    match av {
        AttackVectorMetric::Network => 0.85,
        AttackVectorMetric::Adjacent => 0.62,
        AttackVectorMetric::Local => 0.55,
        AttackVectorMetric::Physical => 0.2,
    }
}

fn ac_weight(ac: AttackComplexity) -> f64 {
    match ac {
        AttackComplexity::Low => 0.77,
        AttackComplexity::High => 0.44,
    }
}

fn pr_weight(pr: PrivilegesRequired, s: Scope) -> f64 {
    match (pr, s) {
        (PrivilegesRequired::None, _) => 0.85,
        (PrivilegesRequired::Low, Scope::Unchanged) => 0.62,
        (PrivilegesRequired::Low, Scope::Changed) => 0.68,
        (PrivilegesRequired::High, Scope::Unchanged) => 0.27,
        (PrivilegesRequired::High, Scope::Changed) => 0.5,
    }
}

fn ui_weight(ui: UserInteraction) -> f64 {
    match ui {
        UserInteraction::None => 0.85,
        UserInteraction::Required => 0.62,
    }
}

fn impact_weight(i: Impact) -> f64 {
    match i {
        Impact::None => 0.0,
        Impact::Low => 0.22,
        Impact::High => 0.56,
    }
}

/// Specification Appendix A "Roundup": smallest number, to one decimal,
/// equal to or higher than the input, computed in a float-safe way.
fn round_up(value: f64) -> f64 {
    let int_input = (value * 100_000.0).round() as i64;
    if int_input % 10_000 == 0 {
        int_input as f64 / 100_000.0
    } else {
        ((int_input / 10_000) as f64 + 1.0) / 10.0
    }
}

impl FromStr for CvssVector {
    type Err = CvssError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix("CVSS:3.1/")
            .or_else(|| s.strip_prefix("CVSS:3.0/"))
            .ok_or_else(|| CvssError::BadPrefix(s.to_owned()))?;
        let mut av = None;
        let mut ac = None;
        let mut pr = None;
        let mut ui = None;
        let mut scope = None;
        let mut c = None;
        let mut i = None;
        let mut a = None;
        for metric in rest.split('/') {
            let (key, value) = metric
                .split_once(':')
                .ok_or_else(|| CvssError::BadMetric(metric.to_owned()))?;
            let bad = || CvssError::BadValue {
                key: key.to_owned(),
                value: value.to_owned(),
            };
            let dup = || CvssError::Duplicate(key.to_owned());
            match key {
                "AV" => set_once(&mut av, parse_av(value).ok_or_else(bad)?, dup)?,
                "AC" => set_once(&mut ac, parse_ac(value).ok_or_else(bad)?, dup)?,
                "PR" => set_once(&mut pr, parse_pr(value).ok_or_else(bad)?, dup)?,
                "UI" => set_once(&mut ui, parse_ui(value).ok_or_else(bad)?, dup)?,
                "S" => set_once(&mut scope, parse_scope(value).ok_or_else(bad)?, dup)?,
                "C" => set_once(&mut c, parse_impact(value).ok_or_else(bad)?, dup)?,
                "I" => set_once(&mut i, parse_impact(value).ok_or_else(bad)?, dup)?,
                "A" => set_once(&mut a, parse_impact(value).ok_or_else(bad)?, dup)?,
                // Temporal/environmental metrics are accepted and ignored.
                _ => {}
            }
        }
        Ok(CvssVector {
            av: av.ok_or(CvssError::Missing("AV"))?,
            ac: ac.ok_or(CvssError::Missing("AC"))?,
            pr: pr.ok_or(CvssError::Missing("PR"))?,
            ui: ui.ok_or(CvssError::Missing("UI"))?,
            s: scope.ok_or(CvssError::Missing("S"))?,
            c: c.ok_or(CvssError::Missing("C"))?,
            i: i.ok_or(CvssError::Missing("I"))?,
            a: a.ok_or(CvssError::Missing("A"))?,
        })
    }
}

fn set_once<T>(
    slot: &mut Option<T>,
    value: T,
    dup: impl FnOnce() -> CvssError,
) -> Result<(), CvssError> {
    if slot.is_some() {
        return Err(dup());
    }
    *slot = Some(value);
    Ok(())
}

fn parse_av(v: &str) -> Option<AttackVectorMetric> {
    match v {
        "N" => Some(AttackVectorMetric::Network),
        "A" => Some(AttackVectorMetric::Adjacent),
        "L" => Some(AttackVectorMetric::Local),
        "P" => Some(AttackVectorMetric::Physical),
        _ => None,
    }
}

fn parse_ac(v: &str) -> Option<AttackComplexity> {
    match v {
        "L" => Some(AttackComplexity::Low),
        "H" => Some(AttackComplexity::High),
        _ => None,
    }
}

fn parse_pr(v: &str) -> Option<PrivilegesRequired> {
    match v {
        "N" => Some(PrivilegesRequired::None),
        "L" => Some(PrivilegesRequired::Low),
        "H" => Some(PrivilegesRequired::High),
        _ => None,
    }
}

fn parse_ui(v: &str) -> Option<UserInteraction> {
    match v {
        "N" => Some(UserInteraction::None),
        "R" => Some(UserInteraction::Required),
        _ => None,
    }
}

fn parse_scope(v: &str) -> Option<Scope> {
    match v {
        "U" => Some(Scope::Unchanged),
        "C" => Some(Scope::Changed),
        _ => None,
    }
}

fn parse_impact(v: &str) -> Option<Impact> {
    match v {
        "N" => Some(Impact::None),
        "L" => Some(Impact::Low),
        "H" => Some(Impact::High),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(vector: &str) -> f64 {
        vector.parse::<CvssVector>().unwrap().base_score()
    }

    // Reference scores below are the official values published by NVD for
    // these canonical vectors.
    #[test]
    fn canonical_network_rce_scores_9_8() {
        assert_eq!(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"), 9.8);
    }

    #[test]
    fn scope_changed_full_impact_scores_10() {
        assert_eq!(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H"), 10.0);
    }

    #[test]
    fn reflected_xss_scores_6_1() {
        assert_eq!(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N"), 6.1);
    }

    #[test]
    fn info_disclosure_scores_7_5() {
        assert_eq!(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N"), 7.5);
    }

    #[test]
    fn local_read_scores_5_5() {
        assert_eq!(score("CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N"), 5.5);
    }

    #[test]
    fn no_impact_scores_zero() {
        assert_eq!(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N"), 0.0);
        assert_eq!(score("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:N/I:N/A:N"), 0.0);
    }

    #[test]
    fn physical_high_complexity_is_low_band() {
        let v: CvssVector = "CVSS:3.1/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N"
            .parse()
            .unwrap();
        assert_eq!(v.severity(), Severity::Low);
    }

    #[test]
    fn cvss_30_prefix_is_accepted() {
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"), 9.8);
    }

    #[test]
    fn display_round_trips() {
        let text = "CVSS:3.1/AV:A/AC:H/PR:L/UI:R/S:C/C:L/I:H/A:N";
        let v: CvssVector = text.parse().unwrap();
        assert_eq!(v.to_string(), text);
        let again: CvssVector = v.to_string().parse().unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn missing_metric_is_reported_by_name() {
        let err = "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H"
            .parse::<CvssVector>()
            .unwrap_err();
        assert_eq!(err, CvssError::Missing("A"));
    }

    #[test]
    fn duplicate_metric_is_rejected() {
        let err = "CVSS:3.1/AV:N/AV:L/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
            .parse::<CvssVector>()
            .unwrap_err();
        assert_eq!(err, CvssError::Duplicate("AV".into()));
    }

    #[test]
    fn bad_prefix_and_bad_value_are_rejected() {
        assert!(matches!(
            "CVSS:2.0/AV:N".parse::<CvssVector>(),
            Err(CvssError::BadPrefix(_))
        ));
        assert!(matches!(
            "CVSS:3.1/AV:X/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H".parse::<CvssVector>(),
            Err(CvssError::BadValue { .. })
        ));
        assert!(matches!(
            "CVSS:3.1/AVN".parse::<CvssVector>(),
            Err(CvssError::BadMetric(_))
        ));
    }

    #[test]
    fn severity_bands_match_spec_table() {
        assert_eq!(Severity::from_score(0.0), Severity::None);
        assert_eq!(Severity::from_score(0.1), Severity::Low);
        assert_eq!(Severity::from_score(3.9), Severity::Low);
        assert_eq!(Severity::from_score(4.0), Severity::Medium);
        assert_eq!(Severity::from_score(6.9), Severity::Medium);
        assert_eq!(Severity::from_score(7.0), Severity::High);
        assert_eq!(Severity::from_score(8.9), Severity::High);
        assert_eq!(Severity::from_score(9.0), Severity::Critical);
        assert_eq!(Severity::from_score(10.0), Severity::Critical);
    }

    #[test]
    fn round_up_spec_examples() {
        // Appendix A examples: Roundup(4.02) == 4.1 and Roundup(4.00) == 4.0.
        assert_eq!(round_up(4.02), 4.1);
        assert_eq!(round_up(4.0), 4.0);
    }

    #[test]
    fn all_scores_stay_in_range_and_band() {
        // Exhaustive sweep over the full metric space (4*2*3*2*2*27 = 2592).
        for av in [
            AttackVectorMetric::Network,
            AttackVectorMetric::Adjacent,
            AttackVectorMetric::Local,
            AttackVectorMetric::Physical,
        ] {
            for ac in [AttackComplexity::Low, AttackComplexity::High] {
                for pr in [
                    PrivilegesRequired::None,
                    PrivilegesRequired::Low,
                    PrivilegesRequired::High,
                ] {
                    for ui in [UserInteraction::None, UserInteraction::Required] {
                        for s in [Scope::Unchanged, Scope::Changed] {
                            for c in [Impact::None, Impact::Low, Impact::High] {
                                for i in [Impact::None, Impact::Low, Impact::High] {
                                    for a in [Impact::None, Impact::Low, Impact::High] {
                                        let v = CvssVector {
                                            av,
                                            ac,
                                            pr,
                                            ui,
                                            s,
                                            c,
                                            i,
                                            a,
                                        };
                                        let score = v.base_score();
                                        assert!((0.0..=10.0).contains(&score), "{v}: {score}");
                                        // One decimal place exactly.
                                        let tenths = score * 10.0;
                                        assert!(
                                            (tenths - tenths.round()).abs() < 1e-9,
                                            "{v}: {score}"
                                        );
                                        if c == Impact::None
                                            && i == Impact::None
                                            && a == Impact::None
                                        {
                                            assert_eq!(score, 0.0, "{v}");
                                        } else {
                                            assert!(score > 0.0, "{v}");
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
