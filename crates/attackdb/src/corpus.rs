//! The corpus: all three record families plus the cross-reference index.

use std::collections::BTreeMap;

use crate::{
    Abstraction, AttackDbError, AttackPattern, AttackVectorId, CapecId, CveId, CweId, Severity,
    Vulnerability, Weakness,
};

/// Summary statistics over a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusStats {
    /// Number of attack patterns.
    pub patterns: usize,
    /// Number of weaknesses.
    pub weaknesses: usize,
    /// Number of vulnerabilities.
    pub vulnerabilities: usize,
    /// Number of CAPEC→CWE links.
    pub pattern_weakness_links: usize,
    /// Number of CVE→CWE links.
    pub vulnerability_weakness_links: usize,
}

impl CorpusStats {
    /// Total records across all families.
    #[must_use]
    pub fn total(&self) -> usize {
        self.patterns + self.weaknesses + self.vulnerabilities
    }
}

/// An attack vector corpus: patterns, weaknesses, and vulnerabilities with
/// their interconnections, as published by MITRE-style databases.
///
/// Records are immutable once inserted; the cross-reference index is kept
/// in sync on insert. Dangling cross-references are allowed at insert time
/// (MITRE feeds have them too) and can be audited with
/// [`Corpus::dangling_references`].
///
/// # Examples
///
/// ```
/// use cpssec_attackdb::{Corpus, AttackPattern, Abstraction, CapecId, CweId, Weakness};
///
/// let mut corpus = Corpus::new();
/// corpus.add_weakness(Weakness::new(CweId::new(78), "OS Command Injection", "..."))?;
/// corpus.add_pattern(
///     AttackPattern::new(CapecId::new(88), "OS Command Injection", "...", Abstraction::Standard)
///         .with_weakness(CweId::new(78)),
/// )?;
/// assert_eq!(corpus.patterns_for_weakness(CweId::new(78)).len(), 1);
/// # Ok::<(), cpssec_attackdb::AttackDbError>(())
/// ```
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Corpus {
    patterns: BTreeMap<CapecId, AttackPattern>,
    weaknesses: BTreeMap<CweId, Weakness>,
    vulnerabilities: BTreeMap<CveId, Vulnerability>,
    // Reverse links, maintained on insert.
    weakness_to_patterns: BTreeMap<CweId, Vec<CapecId>>,
    weakness_to_vulns: BTreeMap<CweId, Vec<CveId>>,
}

impl Corpus {
    /// Creates an empty corpus.
    #[must_use]
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Adds an attack pattern.
    ///
    /// # Errors
    ///
    /// [`AttackDbError::DuplicateRecord`] if the id is already present.
    pub fn add_pattern(&mut self, pattern: AttackPattern) -> Result<(), AttackDbError> {
        if self.patterns.contains_key(&pattern.id()) {
            return Err(AttackDbError::DuplicateRecord(pattern.id().into()));
        }
        for cwe in pattern.related_weaknesses() {
            let entry = self.weakness_to_patterns.entry(*cwe).or_default();
            // Kept sorted so the index is canonical regardless of insertion
            // order (important for interchange round-trips).
            let position = entry.partition_point(|id| *id < pattern.id());
            entry.insert(position, pattern.id());
        }
        self.patterns.insert(pattern.id(), pattern);
        Ok(())
    }

    /// Adds a weakness.
    ///
    /// # Errors
    ///
    /// [`AttackDbError::DuplicateRecord`] if the id is already present.
    pub fn add_weakness(&mut self, weakness: Weakness) -> Result<(), AttackDbError> {
        if self.weaknesses.contains_key(&weakness.id()) {
            return Err(AttackDbError::DuplicateRecord(weakness.id().into()));
        }
        self.weaknesses.insert(weakness.id(), weakness);
        Ok(())
    }

    /// Adds a vulnerability.
    ///
    /// # Errors
    ///
    /// [`AttackDbError::DuplicateRecord`] if the id is already present.
    pub fn add_vulnerability(&mut self, vuln: Vulnerability) -> Result<(), AttackDbError> {
        if self.vulnerabilities.contains_key(&vuln.id()) {
            return Err(AttackDbError::DuplicateRecord(vuln.id().into()));
        }
        for cwe in vuln.weaknesses() {
            let entry = self.weakness_to_vulns.entry(*cwe).or_default();
            let position = entry.partition_point(|id| *id < vuln.id());
            entry.insert(position, vuln.id());
        }
        self.vulnerabilities.insert(vuln.id(), vuln);
        Ok(())
    }

    /// Looks up an attack pattern.
    #[must_use]
    pub fn pattern(&self, id: CapecId) -> Option<&AttackPattern> {
        self.patterns.get(&id)
    }

    /// Looks up a weakness.
    #[must_use]
    pub fn weakness(&self, id: CweId) -> Option<&Weakness> {
        self.weaknesses.get(&id)
    }

    /// Looks up a vulnerability.
    #[must_use]
    pub fn vulnerability(&self, id: CveId) -> Option<&Vulnerability> {
        self.vulnerabilities.get(&id)
    }

    /// Whether the corpus contains the record.
    #[must_use]
    pub fn contains(&self, id: AttackVectorId) -> bool {
        match id {
            AttackVectorId::Pattern(p) => self.patterns.contains_key(&p),
            AttackVectorId::Weakness(w) => self.weaknesses.contains_key(&w),
            AttackVectorId::Vulnerability(v) => self.vulnerabilities.contains_key(&v),
        }
    }

    /// Iterates over all attack patterns in id order.
    pub fn patterns(&self) -> impl Iterator<Item = &AttackPattern> {
        self.patterns.values()
    }

    /// Iterates over all weaknesses in id order.
    pub fn weaknesses(&self) -> impl Iterator<Item = &Weakness> {
        self.weaknesses.values()
    }

    /// Iterates over all vulnerabilities in id order.
    pub fn vulnerabilities(&self) -> impl Iterator<Item = &Vulnerability> {
        self.vulnerabilities.values()
    }

    /// Patterns related to a weakness (CAPEC records listing this CWE).
    #[must_use]
    pub fn patterns_for_weakness(&self, cwe: CweId) -> Vec<CapecId> {
        self.weakness_to_patterns
            .get(&cwe)
            .cloned()
            .unwrap_or_default()
    }

    /// Vulnerabilities mapped to a weakness (CVE records listing this CWE).
    #[must_use]
    pub fn vulnerabilities_for_weakness(&self, cwe: CweId) -> Vec<CveId> {
        self.weakness_to_vulns
            .get(&cwe)
            .cloned()
            .unwrap_or_default()
    }

    /// Weaknesses a pattern exploits (the forward CAPEC→CWE link).
    #[must_use]
    pub fn weaknesses_for_pattern(&self, capec: CapecId) -> Vec<CweId> {
        self.patterns
            .get(&capec)
            .map(|p| p.related_weaknesses().to_vec())
            .unwrap_or_default()
    }

    /// Weaknesses underlying a vulnerability (the forward CVE→CWE link).
    #[must_use]
    pub fn weaknesses_for_vulnerability(&self, cve: CveId) -> Vec<CweId> {
        self.vulnerabilities
            .get(&cve)
            .map(|v| v.weaknesses().to_vec())
            .unwrap_or_default()
    }

    /// Patterns at a given abstraction level, in id order.
    #[must_use]
    pub fn patterns_at(&self, abstraction: Abstraction) -> Vec<CapecId> {
        self.patterns
            .values()
            .filter(|p| p.abstraction() == abstraction)
            .map(AttackPattern::id)
            .collect()
    }

    /// Vulnerabilities at or above a severity band, in id order.
    #[must_use]
    pub fn vulnerabilities_at_severity(&self, at_least: Severity) -> Vec<CveId> {
        self.vulnerabilities
            .values()
            .filter(|v| v.severity().is_some_and(|s| s >= at_least))
            .map(Vulnerability::id)
            .collect()
    }

    /// Cross-references whose target record is missing from the corpus.
    #[must_use]
    pub fn dangling_references(&self) -> Vec<AttackDbError> {
        let mut out = Vec::new();
        for p in self.patterns.values() {
            for cwe in p.related_weaknesses() {
                if !self.weaknesses.contains_key(cwe) {
                    out.push(AttackDbError::DanglingReference {
                        from: p.id().into(),
                        to: (*cwe).into(),
                    });
                }
            }
        }
        for v in self.vulnerabilities.values() {
            for cwe in v.weaknesses() {
                if !self.weaknesses.contains_key(cwe) {
                    out.push(AttackDbError::DanglingReference {
                        from: v.id().into(),
                        to: (*cwe).into(),
                    });
                }
            }
        }
        out
    }

    /// The highest pattern id present, if any — the append-only floor a
    /// delta batch must clear for incremental indexing to stay equivalent
    /// to a rebuild (both walk records in id order).
    #[must_use]
    pub fn last_pattern_id(&self) -> Option<CapecId> {
        self.patterns.keys().next_back().copied()
    }

    /// The highest weakness id present, if any (see [`Self::last_pattern_id`]).
    #[must_use]
    pub fn last_weakness_id(&self) -> Option<CweId> {
        self.weaknesses.keys().next_back().copied()
    }

    /// The highest vulnerability id present, if any (see
    /// [`Self::last_pattern_id`]).
    #[must_use]
    pub fn last_vulnerability_id(&self) -> Option<CveId> {
        self.vulnerabilities.keys().next_back().copied()
    }

    /// Merges another corpus into this one.
    ///
    /// # Errors
    ///
    /// [`AttackDbError::DuplicateRecord`] on the first id collision; records
    /// inserted before the collision remain.
    pub fn merge(&mut self, other: Corpus) -> Result<(), AttackDbError> {
        for (_, p) in other.patterns {
            self.add_pattern(p)?;
        }
        for (_, w) in other.weaknesses {
            self.add_weakness(w)?;
        }
        for (_, v) in other.vulnerabilities {
            self.add_vulnerability(v)?;
        }
        Ok(())
    }

    /// Computes summary statistics.
    #[must_use]
    pub fn stats(&self) -> CorpusStats {
        CorpusStats {
            patterns: self.patterns.len(),
            weaknesses: self.weaknesses.len(),
            vulnerabilities: self.vulnerabilities.len(),
            pattern_weakness_links: self
                .patterns
                .values()
                .map(|p| p.related_weaknesses().len())
                .sum(),
            vulnerability_weakness_links: self
                .vulnerabilities
                .values()
                .map(|v| v.weaknesses().len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Abstraction;

    fn small() -> Corpus {
        let mut c = Corpus::new();
        c.add_weakness(Weakness::new(
            CweId::new(78),
            "OS Command Injection",
            "shell injection",
        ))
        .unwrap();
        c.add_weakness(Weakness::new(
            CweId::new(20),
            "Improper Input Validation",
            "no checks",
        ))
        .unwrap();
        c.add_pattern(
            AttackPattern::new(
                CapecId::new(88),
                "OS Command Injection",
                "inject",
                Abstraction::Standard,
            )
            .with_weakness(CweId::new(78))
            .with_weakness(CweId::new(20)),
        )
        .unwrap();
        c.add_vulnerability(
            Vulnerability::new(CveId::new(2018, 101), "asa rce")
                .with_weakness(CweId::new(78))
                .with_cvss(
                    "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
                        .parse()
                        .unwrap(),
                ),
        )
        .unwrap();
        c
    }

    #[test]
    fn duplicate_ids_are_rejected_per_family() {
        let mut c = small();
        assert!(matches!(
            c.add_weakness(Weakness::new(CweId::new(78), "again", "x")),
            Err(AttackDbError::DuplicateRecord(_))
        ));
        assert!(matches!(
            c.add_pattern(AttackPattern::new(
                CapecId::new(88),
                "again",
                "x",
                Abstraction::Meta
            )),
            Err(AttackDbError::DuplicateRecord(_))
        ));
        assert!(matches!(
            c.add_vulnerability(Vulnerability::new(CveId::new(2018, 101), "again")),
            Err(AttackDbError::DuplicateRecord(_))
        ));
    }

    #[test]
    fn reverse_links_are_maintained() {
        let c = small();
        assert_eq!(
            c.patterns_for_weakness(CweId::new(78)),
            vec![CapecId::new(88)]
        );
        assert_eq!(
            c.patterns_for_weakness(CweId::new(20)),
            vec![CapecId::new(88)]
        );
        assert_eq!(
            c.vulnerabilities_for_weakness(CweId::new(78)),
            vec![CveId::new(2018, 101)]
        );
        assert!(c.vulnerabilities_for_weakness(CweId::new(20)).is_empty());
    }

    #[test]
    fn forward_links_read_from_records() {
        let c = small();
        assert_eq!(
            c.weaknesses_for_pattern(CapecId::new(88)),
            vec![CweId::new(78), CweId::new(20)]
        );
        assert_eq!(
            c.weaknesses_for_vulnerability(CveId::new(2018, 101)),
            vec![CweId::new(78)]
        );
        assert!(c.weaknesses_for_pattern(CapecId::new(999)).is_empty());
    }

    #[test]
    fn stats_count_links() {
        let s = small().stats();
        assert_eq!(s.patterns, 1);
        assert_eq!(s.weaknesses, 2);
        assert_eq!(s.vulnerabilities, 1);
        assert_eq!(s.pattern_weakness_links, 2);
        assert_eq!(s.vulnerability_weakness_links, 1);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn dangling_references_are_reported_not_rejected() {
        let mut c = Corpus::new();
        c.add_pattern(
            AttackPattern::new(CapecId::new(1), "p", "d", Abstraction::Meta)
                .with_weakness(CweId::new(999)),
        )
        .unwrap();
        let dangling = c.dangling_references();
        assert_eq!(dangling.len(), 1);
        assert!(matches!(
            &dangling[0],
            AttackDbError::DanglingReference { .. }
        ));
        assert!(small().dangling_references().is_empty());
    }

    #[test]
    fn severity_filter_uses_cvss() {
        let c = small();
        assert_eq!(c.vulnerabilities_at_severity(Severity::Critical).len(), 1);
        assert_eq!(c.vulnerabilities_at_severity(Severity::Low).len(), 1);
    }

    #[test]
    fn abstraction_filter() {
        let c = small();
        assert_eq!(c.patterns_at(Abstraction::Standard).len(), 1);
        assert!(c.patterns_at(Abstraction::Meta).is_empty());
    }

    #[test]
    fn merge_combines_and_rejects_collisions() {
        let mut a = Corpus::new();
        a.add_weakness(Weakness::new(CweId::new(1), "w1", "d"))
            .unwrap();
        let mut b = Corpus::new();
        b.add_weakness(Weakness::new(CweId::new(2), "w2", "d"))
            .unwrap();
        a.merge(b).unwrap();
        assert_eq!(a.stats().weaknesses, 2);

        let mut c = Corpus::new();
        c.add_weakness(Weakness::new(CweId::new(1), "w1 again", "d"))
            .unwrap();
        assert!(a.merge(c).is_err());
    }

    #[test]
    fn contains_discriminates_families() {
        let c = small();
        assert!(c.contains(CweId::new(78).into()));
        assert!(c.contains(CapecId::new(88).into()));
        assert!(c.contains(CveId::new(2018, 101).into()));
        assert!(!c.contains(CweId::new(1234).into()));
    }
}
