//! A minimal JSON reader/writer for corpus interchange.
//!
//! Supports the full JSON value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null). Self-contained so the crate's only
//! dependencies stay `rand` (+ optional `serde` derives); the subset NVD,
//! CWE and CAPEC extracts need is exactly plain JSON.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order not preserved; keys sorted).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|map| map.get(key))
    }
}

/// Error parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    at: usize,
    detail: String,
}

impl JsonError {
    fn new(at: usize, detail: impl Into<String>) -> Self {
        JsonError {
            at,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the problem.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(JsonError::new(parser.pos, "trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                self.pos,
                format!("expected `{}`", byte as char),
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::new(
                self.pos,
                format!("unexpected `{}`", other as char),
            )),
            None => Err(JsonError::new(self.pos, "unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::new(self.pos, format!("expected `{text}`")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(JsonError::new(self.pos, "expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(JsonError::new(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::new(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4(start)?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return Err(JsonError::new(start, "lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(JsonError::new(start, "lone high surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4(start)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(JsonError::new(start, "invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| JsonError::new(start, "invalid code point"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new(start, "invalid code point"))?
                            };
                            out.push(ch);
                            // hex4 leaves pos after the 4 digits; the
                            // shared increment below must not run.
                            continue;
                        }
                        _ => return Err(JsonError::new(self.pos, "invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::new(self.pos, "invalid utf-8"))?;
                    let ch = text.chars().next().expect("nonempty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self, start: usize) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| JsonError::new(start, "truncated \\u escape"))?;
        let text =
            std::str::from_utf8(digits).map_err(|_| JsonError::new(start, "invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| JsonError::new(start, "invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new(start, "invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError::new(start, "invalid number"))
    }
}

/// Writes a string with JSON escaping into `out`.
pub fn write_escaped(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("-1.5e2").unwrap(), JsonValue::Number(-150.0));
        assert_eq!(
            parse(r#""hello""#).unwrap(),
            JsonValue::String("hello".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let value = parse(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(
            value.get("a").unwrap().as_array().unwrap()[0],
            JsonValue::Number(1.0)
        );
        assert_eq!(
            value.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(value.get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn string_escapes_decode() {
        assert_eq!(
            parse(r#""a\n\t\"\\A""#).unwrap().as_str(),
            Some("a\n\t\"\\A")
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(parse("\"caf\u{e9}\"").unwrap().as_str(), Some("café"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "tru", "\"open", "{\"a\" 1}", "1 2", "{,}"] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f\u{1F600}";
        let mut encoded = String::new();
        write_escaped(&mut encoded, nasty);
        assert_eq!(parse(&encoded).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(Vec::new()));
        assert_eq!(parse("  [ ]  ").unwrap(), JsonValue::Array(Vec::new()));
    }
}
