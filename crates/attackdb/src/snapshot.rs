//! Binary snapshot encoding for corpus records (the `.cpsnap` record layer).
//!
//! JSONL ([`crate::jsonl`]) is the interchange format; this module is the
//! *artifact* format: a compact little-endian byte layout that a server can
//! decode without tokenizing, validating id syntax, or re-deriving CVSS
//! vectors from text. Cross-reference indices are not stored — they are a
//! pure function of the records and [`Corpus`] rebuilds them on insert, so
//! a decoded corpus is structurally identical (`==`) to the encoded one.
//!
//! The framing above this layer (magic, format version, section table,
//! checksums) lives in `cpssec_search::snapshot`, which composes the record
//! payload produced here with the frozen index payloads.

use core::fmt;

use crate::{
    Abstraction, AttackComplexity, AttackPattern, AttackVectorMetric, CapecId, Corpus, CpeName,
    CveId, CvssVector, CweId, Impact, Likelihood, PrivilegesRequired, Scope, Severity,
    UserInteraction, Vulnerability, Weakness,
};

/// Error decoding a binary snapshot.
///
/// Every variant renders as a single line, matching the CLI's one-line
/// stderr error convention.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The byte stream ended before the encoded structure did.
    Truncated,
    /// The leading magic bytes are not `CPSNAP`.
    BadMagic,
    /// The format version is not one this build can read.
    UnsupportedVersion(u16),
    /// A section's stored checksum does not match its payload.
    ChecksumMismatch(&'static str),
    /// The bytes are structurally invalid (bad discriminant, bad UTF-8,
    /// duplicate record, inconsistent table lengths, ...).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::BadMagic => write!(f, "not a cpsnap snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::ChecksumMismatch(section) => {
                write!(f, "checksum mismatch in section `{section}`")
            }
            SnapshotError::Corrupt(detail) => write!(f, "corrupt snapshot: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A bounds-checked little-endian reader over a byte slice.
///
/// All accessors return [`SnapshotError::Truncated`] instead of panicking
/// when the slice runs out — corrupted input must surface as an error.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` stored as raw IEEE-754 bits (bit-exact round trip).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input.
    pub fn f64_bits(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string slice.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the bytes run out,
    /// [`SnapshotError::Corrupt`] if they are not UTF-8.
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        core::str::from_utf8(bytes)
            .map_err(|_| SnapshotError::Corrupt("string is not valid UTF-8".into()))
    }

    /// A safe `Vec` capacity for `count` elements of at least
    /// `min_element_size` encoded bytes each: never trusts a corrupted
    /// count beyond what the remaining input could possibly hold.
    #[must_use]
    pub fn capacity_for(&self, count: u32, min_element_size: usize) -> usize {
        (count as usize).min(self.remaining() / min_element_size.max(1))
    }
}

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as raw IEEE-754 bits (bit-exact round trip).
pub fn put_f64_bits(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a `u32`-length-prefixed UTF-8 string.
///
/// # Panics
///
/// Panics if the string is longer than `u32::MAX` bytes.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).expect("string fits u32"));
    out.extend_from_slice(s.as_bytes());
}

fn put_len(out: &mut Vec<u8>, len: usize) {
    put_u32(out, u32::try_from(len).expect("collection fits u32"));
}

/// Sentinel byte for an absent `Option` enum field.
const ABSENT: u8 = 0xFF;

fn put_opt_enum(out: &mut Vec<u8>, discriminant: Option<u8>) {
    put_u8(out, discriminant.unwrap_or(ABSENT));
}

fn bad_discriminant(what: &str, value: u8) -> SnapshotError {
    SnapshotError::Corrupt(format!("invalid {what} discriminant {value}"))
}

fn likelihood_to_u8(l: Likelihood) -> u8 {
    Likelihood::ALL
        .iter()
        .position(|&x| x == l)
        .expect("member") as u8
}

fn severity_to_u8(s: Severity) -> u8 {
    match s {
        Severity::None => 0,
        Severity::Low => 1,
        Severity::Medium => 2,
        Severity::High => 3,
        Severity::Critical => 4,
    }
}

fn severity_from_u8(v: u8) -> Result<Severity, SnapshotError> {
    Ok(match v {
        0 => Severity::None,
        1 => Severity::Low,
        2 => Severity::Medium,
        3 => Severity::High,
        4 => Severity::Critical,
        other => return Err(bad_discriminant("severity", other)),
    })
}

fn encode_cvss(out: &mut Vec<u8>, v: &CvssVector) {
    // Metric enums as discriminant bytes, never as the display string: the
    // parser also accepts `CVSS:3.0/` prefixes, so text would not be a
    // faithful inverse of the struct the corpus actually holds.
    put_u8(
        out,
        match v.av {
            AttackVectorMetric::Network => 0,
            AttackVectorMetric::Adjacent => 1,
            AttackVectorMetric::Local => 2,
            AttackVectorMetric::Physical => 3,
        },
    );
    put_u8(
        out,
        match v.ac {
            AttackComplexity::Low => 0,
            AttackComplexity::High => 1,
        },
    );
    put_u8(
        out,
        match v.pr {
            PrivilegesRequired::None => 0,
            PrivilegesRequired::Low => 1,
            PrivilegesRequired::High => 2,
        },
    );
    put_u8(
        out,
        match v.ui {
            UserInteraction::None => 0,
            UserInteraction::Required => 1,
        },
    );
    put_u8(
        out,
        match v.s {
            Scope::Unchanged => 0,
            Scope::Changed => 1,
        },
    );
    for impact in [v.c, v.i, v.a] {
        put_u8(
            out,
            match impact {
                Impact::None => 0,
                Impact::Low => 1,
                Impact::High => 2,
            },
        );
    }
}

fn decode_impact(r: &mut Reader<'_>) -> Result<Impact, SnapshotError> {
    Ok(match r.u8()? {
        0 => Impact::None,
        1 => Impact::Low,
        2 => Impact::High,
        other => return Err(bad_discriminant("impact", other)),
    })
}

fn decode_cvss(r: &mut Reader<'_>) -> Result<CvssVector, SnapshotError> {
    Ok(CvssVector {
        av: match r.u8()? {
            0 => AttackVectorMetric::Network,
            1 => AttackVectorMetric::Adjacent,
            2 => AttackVectorMetric::Local,
            3 => AttackVectorMetric::Physical,
            other => return Err(bad_discriminant("attack vector", other)),
        },
        ac: match r.u8()? {
            0 => AttackComplexity::Low,
            1 => AttackComplexity::High,
            other => return Err(bad_discriminant("attack complexity", other)),
        },
        pr: match r.u8()? {
            0 => PrivilegesRequired::None,
            1 => PrivilegesRequired::Low,
            2 => PrivilegesRequired::High,
            other => return Err(bad_discriminant("privileges required", other)),
        },
        ui: match r.u8()? {
            0 => UserInteraction::None,
            1 => UserInteraction::Required,
            other => return Err(bad_discriminant("user interaction", other)),
        },
        s: match r.u8()? {
            0 => Scope::Unchanged,
            1 => Scope::Changed,
            other => return Err(bad_discriminant("scope", other)),
        },
        c: decode_impact(r)?,
        i: decode_impact(r)?,
        a: decode_impact(r)?,
    })
}

/// Encodes one attack pattern record — the per-record unit the sectioned
/// corpus layout and `.cpsdelta` batches are built from.
pub fn encode_pattern(out: &mut Vec<u8>, p: &AttackPattern) {
    put_u32(out, p.id().number());
    put_str(out, p.name());
    put_str(out, p.description());
    put_u8(
        out,
        match p.abstraction() {
            Abstraction::Meta => 0,
            Abstraction::Standard => 1,
            Abstraction::Detailed => 2,
        },
    );
    put_opt_enum(out, p.likelihood().map(likelihood_to_u8));
    put_opt_enum(out, p.typical_severity().map(severity_to_u8));
    put_len(out, p.related_weaknesses().len());
    for cwe in p.related_weaknesses() {
        put_u32(out, cwe.number());
    }
    put_len(out, p.prerequisites().len());
    for prerequisite in p.prerequisites() {
        put_str(out, prerequisite);
    }
}

/// Decodes one attack pattern record written by [`encode_pattern`].
///
/// # Errors
///
/// [`SnapshotError::Truncated`] or [`SnapshotError::Corrupt`] on malformed
/// bytes.
pub fn decode_pattern(r: &mut Reader<'_>) -> Result<AttackPattern, SnapshotError> {
    let id = CapecId::new(r.u32()?);
    let name = r.str()?;
    let description = r.str()?;
    let abstraction = match r.u8()? {
        0 => Abstraction::Meta,
        1 => Abstraction::Standard,
        2 => Abstraction::Detailed,
        other => return Err(bad_discriminant("abstraction", other)),
    };
    let mut pattern = AttackPattern::new(id, name, description, abstraction);
    match r.u8()? {
        ABSENT => {}
        v => {
            let likelihood = *Likelihood::ALL
                .get(v as usize)
                .ok_or_else(|| bad_discriminant("likelihood", v))?;
            pattern = pattern.with_likelihood(likelihood);
        }
    }
    match r.u8()? {
        ABSENT => {}
        v => pattern = pattern.with_severity(severity_from_u8(v)?),
    }
    let weaknesses = r.u32()?;
    for _ in 0..weaknesses {
        pattern = pattern.with_weakness(CweId::new(r.u32()?));
    }
    let prerequisites = r.u32()?;
    for _ in 0..prerequisites {
        pattern = pattern.with_prerequisite(r.str()?);
    }
    Ok(pattern)
}

/// Encodes one weakness record — the per-record unit the sectioned corpus
/// layout and `.cpsdelta` batches are built from.
pub fn encode_weakness(out: &mut Vec<u8>, w: &Weakness) {
    put_u32(out, w.id().number());
    put_str(out, w.name());
    put_str(out, w.description());
    for list in [w.platforms(), w.consequences(), w.mitigations()] {
        put_len(out, list.len());
        for item in list {
            put_str(out, item);
        }
    }
}

/// Decodes one weakness record written by [`encode_weakness`].
///
/// # Errors
///
/// [`SnapshotError::Truncated`] or [`SnapshotError::Corrupt`] on malformed
/// bytes.
pub fn decode_weakness(r: &mut Reader<'_>) -> Result<Weakness, SnapshotError> {
    let id = CweId::new(r.u32()?);
    let name = r.str()?;
    let description = r.str()?;
    let mut weakness = Weakness::new(id, name, description);
    let platforms = r.u32()?;
    for _ in 0..platforms {
        weakness = weakness.with_platform(r.str()?);
    }
    let consequences = r.u32()?;
    for _ in 0..consequences {
        weakness = weakness.with_consequence(r.str()?);
    }
    let mitigations = r.u32()?;
    for _ in 0..mitigations {
        weakness = weakness.with_mitigation(r.str()?);
    }
    Ok(weakness)
}

/// Encodes one vulnerability record — the per-record unit the sectioned
/// corpus layout and `.cpsdelta` batches are built from.
pub fn encode_vulnerability(out: &mut Vec<u8>, v: &Vulnerability) {
    put_u16(out, v.id().year());
    put_u32(out, v.id().number());
    put_str(out, v.description());
    match v.cvss() {
        Some(cvss) => {
            put_u8(out, 1);
            encode_cvss(out, cvss);
        }
        None => put_u8(out, 0),
    }
    put_len(out, v.weaknesses().len());
    for cwe in v.weaknesses() {
        put_u32(out, cwe.number());
    }
    put_len(out, v.affected().len());
    for cpe in v.affected() {
        put_str(out, cpe.vendor());
        put_str(out, cpe.product());
        match cpe.version() {
            Some(version) => {
                put_u8(out, 1);
                put_str(out, version);
            }
            None => put_u8(out, 0),
        }
    }
}

/// Decodes one vulnerability record written by [`encode_vulnerability`].
///
/// # Errors
///
/// [`SnapshotError::Truncated`] or [`SnapshotError::Corrupt`] on malformed
/// bytes.
pub fn decode_vulnerability(r: &mut Reader<'_>) -> Result<Vulnerability, SnapshotError> {
    let id = CveId::new(r.u16()?, r.u32()?);
    let description = r.str()?;
    let mut vuln = Vulnerability::new(id, description);
    match r.u8()? {
        0 => {}
        1 => vuln = vuln.with_cvss(decode_cvss(r)?),
        other => return Err(bad_discriminant("cvss presence", other)),
    }
    let weaknesses = r.u32()?;
    for _ in 0..weaknesses {
        vuln = vuln.with_weakness(CweId::new(r.u32()?));
    }
    let affected = r.u32()?;
    for _ in 0..affected {
        let mut cpe = CpeName::new(r.str()?, r.str()?);
        match r.u8()? {
            0 => {}
            1 => cpe = cpe.with_version(r.str()?),
            other => return Err(bad_discriminant("cpe version presence", other)),
        }
        vuln = vuln.with_affected(cpe);
    }
    Ok(vuln)
}

/// Encodes every record of `corpus` into `out`, all three families in id
/// order. The output is deterministic: the same corpus always produces the
/// same bytes.
pub fn encode_corpus_into(corpus: &Corpus, out: &mut Vec<u8>) {
    let stats = corpus.stats();
    put_len(out, stats.patterns);
    for pattern in corpus.patterns() {
        encode_pattern(out, pattern);
    }
    put_len(out, stats.weaknesses);
    for weakness in corpus.weaknesses() {
        encode_weakness(out, weakness);
    }
    put_len(out, stats.vulnerabilities);
    for vuln in corpus.vulnerabilities() {
        encode_vulnerability(out, vuln);
    }
}

/// [`encode_corpus_into`] into a fresh buffer.
#[must_use]
pub fn encode_corpus(corpus: &Corpus) -> Vec<u8> {
    let mut out = Vec::new();
    encode_corpus_into(corpus, &mut out);
    out
}

/// Decodes a corpus payload produced by [`encode_corpus_into`], rebuilding
/// the cross-reference indices on insert. Requires the payload to be fully
/// consumed — trailing bytes mean the framing above got a length wrong.
///
/// # Errors
///
/// [`SnapshotError::Truncated`] if the bytes run out mid-record;
/// [`SnapshotError::Corrupt`] on invalid discriminants, invalid UTF-8,
/// duplicate record ids, or trailing bytes.
pub fn decode_corpus(bytes: &[u8]) -> Result<Corpus, SnapshotError> {
    let mut r = Reader::new(bytes);
    let corpus = decode_corpus_from(&mut r)?;
    if !r.finished() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing byte(s) after the last record",
            r.remaining()
        )));
    }
    Ok(corpus)
}

/// Decodes a corpus payload at the reader's position (leaves any trailing
/// bytes for the caller).
///
/// # Errors
///
/// As [`decode_corpus`], minus the trailing-bytes check.
pub fn decode_corpus_from(r: &mut Reader<'_>) -> Result<Corpus, SnapshotError> {
    let mut corpus = Corpus::new();
    let dup = |e: crate::AttackDbError| SnapshotError::Corrupt(e.to_string());
    let patterns = r.u32()?;
    for _ in 0..patterns {
        corpus.add_pattern(decode_pattern(r)?).map_err(dup)?;
    }
    let weaknesses = r.u32()?;
    for _ in 0..weaknesses {
        corpus.add_weakness(decode_weakness(r)?).map_err(dup)?;
    }
    let vulnerabilities = r.u32()?;
    for _ in 0..vulnerabilities {
        corpus
            .add_vulnerability(decode_vulnerability(r)?)
            .map_err(dup)?;
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::seed_corpus;
    use crate::synth::{generate, SynthSpec};

    fn mixed_corpus() -> Corpus {
        let mut corpus = seed_corpus();
        corpus
            .merge(generate(&SynthSpec::paper2020(2020, 0.02)))
            .unwrap();
        corpus
    }

    #[test]
    fn seed_corpus_round_trips_structurally_equal() {
        let corpus = seed_corpus();
        let decoded = decode_corpus(&encode_corpus(&corpus)).unwrap();
        assert_eq!(decoded, corpus);
    }

    #[test]
    fn synthetic_corpus_round_trips_and_encoding_is_deterministic() {
        let corpus = mixed_corpus();
        let bytes = encode_corpus(&corpus);
        assert_eq!(bytes, encode_corpus(&corpus), "encoding must be stable");
        let decoded = decode_corpus(&bytes).unwrap();
        assert_eq!(decoded, corpus);
        assert_eq!(encode_corpus(&decoded), bytes, "re-encode is a fixpoint");
    }

    #[test]
    fn every_truncation_point_errors_without_panicking() {
        let bytes = encode_corpus(&seed_corpus());
        // Sample prefixes densely; each must fail cleanly, never panic.
        for len in (0..bytes.len()).step_by(7) {
            let err = decode_corpus(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::Corrupt(_)),
                "prefix {len}: {err}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_corpus(&seed_corpus());
        bytes.push(0);
        assert!(matches!(
            decode_corpus(&bytes).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn bad_discriminants_are_corrupt_not_panics() {
        let corpus = seed_corpus();
        let bytes = encode_corpus(&corpus);
        // Flip every byte position in a sparse sweep. Each mutation must
        // decode to Ok (an unlucky flip in free text), Truncated (a length
        // grew past the end), or Corrupt — never panic.
        for pos in (0..bytes.len()).step_by(11) {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x5A;
            let _ = decode_corpus(&mutated);
        }
    }

    #[test]
    fn cvss_vectors_round_trip_bit_exact() {
        let vectors = [
            "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
            "CVSS:3.0/AV:P/AC:H/PR:H/UI:R/S:C/C:L/I:N/A:L",
            "CVSS:3.1/AV:A/AC:H/PR:L/UI:R/S:C/C:N/I:L/A:H",
        ];
        for text in vectors {
            let v: CvssVector = text.parse().unwrap();
            let mut out = Vec::new();
            encode_cvss(&mut out, &v);
            let decoded = decode_cvss(&mut Reader::new(&out)).unwrap();
            assert_eq!(decoded, v);
        }
    }

    #[test]
    fn reader_errors_are_one_line() {
        for err in [
            SnapshotError::Truncated,
            SnapshotError::BadMagic,
            SnapshotError::UnsupportedVersion(9),
            SnapshotError::ChecksumMismatch("corpus"),
            SnapshotError::Corrupt("detail".into()),
        ] {
            assert_eq!(err.to_string().lines().count(), 1, "{err}");
        }
    }
}
