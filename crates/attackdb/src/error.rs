//! Error type for corpus construction.

use core::fmt;

use crate::AttackVectorId;

/// Errors produced while assembling or querying a corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttackDbError {
    /// A record with this identifier already exists.
    DuplicateRecord(AttackVectorId),
    /// A cross-reference pointed at an identifier not in the corpus.
    DanglingReference {
        /// The record holding the reference.
        from: AttackVectorId,
        /// The missing target.
        to: AttackVectorId,
    },
}

impl fmt::Display for AttackDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackDbError::DuplicateRecord(id) => write!(f, "duplicate record `{id}`"),
            AttackDbError::DanglingReference { from, to } => {
                write!(f, "record `{from}` references missing record `{to}`")
            }
        }
    }
}

impl std::error::Error for AttackDbError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CweId;

    #[test]
    fn messages_are_lowercase() {
        let err = AttackDbError::DuplicateRecord(CweId::new(78).into());
        assert!(err.to_string().starts_with("duplicate record"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<AttackDbError>();
    }
}
