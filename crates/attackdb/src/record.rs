//! The three record families: attack patterns, weaknesses, vulnerabilities.
//!
//! Field selection follows the paper's usage: "high-level descriptions of
//! system components and interactions will tend to match attack pattern and
//! weakness instances; low-level or more specific descriptions of software
//! and hardware platforms will relate more closely to vulnerability
//! instances". Every record therefore exposes a `search_text` the matcher
//! indexes, and the cross-links (`related_weaknesses`, `weaknesses`) that
//! make exploit chains possible.

use core::fmt;
use core::str::FromStr;

use crate::{CapecId, CveId, CvssVector, CweId, Severity};

/// CAPEC abstraction level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Abstraction {
    /// A high-level class of attack (e.g. "Injection").
    Meta,
    /// A standard pattern (e.g. "OS Command Injection").
    Standard,
    /// A detailed, technology-specific pattern.
    Detailed,
}

impl Abstraction {
    /// All levels from most abstract to most detailed.
    pub const ALL: [Abstraction; 3] = [
        Abstraction::Meta,
        Abstraction::Standard,
        Abstraction::Detailed,
    ];

    /// Canonical capitalized name as used by CAPEC.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Abstraction::Meta => "Meta",
            Abstraction::Standard => "Standard",
            Abstraction::Detailed => "Detailed",
        }
    }
}

impl fmt::Display for Abstraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Abstraction {
    type Err = crate::ParseIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Abstraction::ALL
            .iter()
            .copied()
            .find(|a| a.as_str() == s)
            .ok_or_else(|| crate::id::parse_id_error(s, "abstraction"))
    }
}

/// Qualitative likelihood, as CAPEC reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Likelihood {
    /// Very unlikely to be attempted or to succeed.
    VeryLow,
    /// Unlikely.
    Low,
    /// Even odds.
    Medium,
    /// Likely.
    High,
    /// Very likely.
    VeryHigh,
}

impl Likelihood {
    /// All levels from lowest to highest.
    pub const ALL: [Likelihood; 5] = [
        Likelihood::VeryLow,
        Likelihood::Low,
        Likelihood::Medium,
        Likelihood::High,
        Likelihood::VeryHigh,
    ];

    /// Canonical name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Likelihood::VeryLow => "Very Low",
            Likelihood::Low => "Low",
            Likelihood::Medium => "Medium",
            Likelihood::High => "High",
            Likelihood::VeryHigh => "Very High",
        }
    }
}

impl fmt::Display for Likelihood {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A CAPEC-style attack pattern: the attacker's perspective.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttackPattern {
    id: CapecId,
    name: String,
    description: String,
    abstraction: Abstraction,
    likelihood: Option<Likelihood>,
    typical_severity: Option<Severity>,
    related_weaknesses: Vec<CweId>,
    prerequisites: Vec<String>,
}

impl AttackPattern {
    /// Creates a pattern; use the builder-style `with_` methods to fill
    /// optional fields.
    pub fn new(
        id: CapecId,
        name: impl Into<String>,
        description: impl Into<String>,
        abstraction: Abstraction,
    ) -> Self {
        AttackPattern {
            id,
            name: name.into(),
            description: description.into(),
            abstraction,
            likelihood: None,
            typical_severity: None,
            related_weaknesses: Vec::new(),
            prerequisites: Vec::new(),
        }
    }

    /// Sets the qualitative likelihood of attack.
    #[must_use]
    pub fn with_likelihood(mut self, likelihood: Likelihood) -> Self {
        self.likelihood = Some(likelihood);
        self
    }

    /// Sets the typical severity.
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.typical_severity = Some(severity);
        self
    }

    /// Links a related weakness (duplicates ignored).
    #[must_use]
    pub fn with_weakness(mut self, cwe: CweId) -> Self {
        if !self.related_weaknesses.contains(&cwe) {
            self.related_weaknesses.push(cwe);
        }
        self
    }

    /// Adds a prerequisite statement.
    #[must_use]
    pub fn with_prerequisite(mut self, prerequisite: impl Into<String>) -> Self {
        self.prerequisites.push(prerequisite.into());
        self
    }

    /// The identifier.
    #[must_use]
    pub fn id(&self) -> CapecId {
        self.id
    }

    /// The pattern name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The long description.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The abstraction level.
    #[must_use]
    pub fn abstraction(&self) -> Abstraction {
        self.abstraction
    }

    /// The qualitative likelihood of attack, if recorded.
    #[must_use]
    pub fn likelihood(&self) -> Option<Likelihood> {
        self.likelihood
    }

    /// The typical severity, if recorded.
    #[must_use]
    pub fn typical_severity(&self) -> Option<Severity> {
        self.typical_severity
    }

    /// Related weaknesses (CAPEC → CWE links).
    #[must_use]
    pub fn related_weaknesses(&self) -> &[CweId] {
        &self.related_weaknesses
    }

    /// Prerequisite statements.
    #[must_use]
    pub fn prerequisites(&self) -> &[String] {
        &self.prerequisites
    }

    /// The text the search engine indexes for this record.
    #[must_use]
    pub fn search_text(&self) -> String {
        let mut text = format!("{} {}", self.name, self.description);
        for p in &self.prerequisites {
            text.push(' ');
            text.push_str(p);
        }
        text
    }
}

/// A CWE-style weakness: the defender's perspective on a flaw class.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Weakness {
    id: CweId,
    name: String,
    description: String,
    platforms: Vec<String>,
    consequences: Vec<String>,
    mitigations: Vec<String>,
}

impl Weakness {
    /// Creates a weakness.
    pub fn new(id: CweId, name: impl Into<String>, description: impl Into<String>) -> Self {
        Weakness {
            id,
            name: name.into(),
            description: description.into(),
            platforms: Vec::new(),
            consequences: Vec::new(),
            mitigations: Vec::new(),
        }
    }

    /// Adds a potential mitigation statement (CWE's "Potential
    /// Mitigations" section).
    #[must_use]
    pub fn with_mitigation(mut self, mitigation: impl Into<String>) -> Self {
        self.mitigations.push(mitigation.into());
        self
    }

    /// Adds an applicable platform ("Linux", "Windows", "language-neutral").
    #[must_use]
    pub fn with_platform(mut self, platform: impl Into<String>) -> Self {
        self.platforms.push(platform.into());
        self
    }

    /// Adds a common consequence statement.
    #[must_use]
    pub fn with_consequence(mut self, consequence: impl Into<String>) -> Self {
        self.consequences.push(consequence.into());
        self
    }

    /// The identifier.
    #[must_use]
    pub fn id(&self) -> CweId {
        self.id
    }

    /// The weakness name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The long description.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Applicable platforms.
    #[must_use]
    pub fn platforms(&self) -> &[String] {
        &self.platforms
    }

    /// Common consequences.
    #[must_use]
    pub fn consequences(&self) -> &[String] {
        &self.consequences
    }

    /// Potential mitigations.
    #[must_use]
    pub fn mitigations(&self) -> &[String] {
        &self.mitigations
    }

    /// The text the search engine indexes for this record.
    #[must_use]
    pub fn search_text(&self) -> String {
        let mut text = format!("{} {}", self.name, self.description);
        for p in &self.platforms {
            text.push(' ');
            text.push_str(p);
        }
        for c in &self.consequences {
            text.push(' ');
            text.push_str(c);
        }
        text
    }
}

/// A CPE-style product name identifying what a vulnerability affects.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpeName {
    vendor: String,
    product: String,
    version: Option<String>,
}

impl CpeName {
    /// Creates a vendor/product pair without version constraint.
    pub fn new(vendor: impl Into<String>, product: impl Into<String>) -> Self {
        CpeName {
            vendor: vendor.into(),
            product: product.into(),
            version: None,
        }
    }

    /// Constrains the name to one version.
    #[must_use]
    pub fn with_version(mut self, version: impl Into<String>) -> Self {
        self.version = Some(version.into());
        self
    }

    /// The vendor.
    #[must_use]
    pub fn vendor(&self) -> &str {
        &self.vendor
    }

    /// The product.
    #[must_use]
    pub fn product(&self) -> &str {
        &self.product
    }

    /// The version constraint, if any.
    #[must_use]
    pub fn version(&self) -> Option<&str> {
        self.version.as_deref()
    }
}

impl fmt::Display for CpeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.version {
            Some(v) => write!(f, "{}:{}:{v}", self.vendor, self.product),
            None => write!(f, "{}:{}", self.vendor, self.product),
        }
    }
}

/// A CVE/NVD-style vulnerability: a concrete flaw in concrete products.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vulnerability {
    id: CveId,
    description: String,
    cvss: Option<CvssVector>,
    weaknesses: Vec<CweId>,
    affected: Vec<CpeName>,
}

impl Vulnerability {
    /// Creates a vulnerability.
    pub fn new(id: CveId, description: impl Into<String>) -> Self {
        Vulnerability {
            id,
            description: description.into(),
            cvss: None,
            weaknesses: Vec::new(),
            affected: Vec::new(),
        }
    }

    /// Attaches a CVSS v3.1 base vector.
    #[must_use]
    pub fn with_cvss(mut self, cvss: CvssVector) -> Self {
        self.cvss = Some(cvss);
        self
    }

    /// Links the underlying weakness (NVD's CWE mapping), duplicates ignored.
    #[must_use]
    pub fn with_weakness(mut self, cwe: CweId) -> Self {
        if !self.weaknesses.contains(&cwe) {
            self.weaknesses.push(cwe);
        }
        self
    }

    /// Adds an affected product.
    #[must_use]
    pub fn with_affected(mut self, cpe: CpeName) -> Self {
        self.affected.push(cpe);
        self
    }

    /// The identifier.
    #[must_use]
    pub fn id(&self) -> CveId {
        self.id
    }

    /// The description.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The CVSS vector, if scored.
    #[must_use]
    pub fn cvss(&self) -> Option<&CvssVector> {
        self.cvss.as_ref()
    }

    /// Severity band: the CVSS rating, or `None` if unscored.
    #[must_use]
    pub fn severity(&self) -> Option<Severity> {
        self.cvss.map(|v| v.severity())
    }

    /// Mapped weaknesses (CVE → CWE links).
    #[must_use]
    pub fn weaknesses(&self) -> &[CweId] {
        &self.weaknesses
    }

    /// Affected products.
    #[must_use]
    pub fn affected(&self) -> &[CpeName] {
        &self.affected
    }

    /// The text the search engine indexes for this record.
    #[must_use]
    pub fn search_text(&self) -> String {
        let mut text = self.description.clone();
        for cpe in &self.affected {
            text.push(' ');
            text.push_str(cpe.vendor());
            text.push(' ');
            text.push_str(cpe.product());
            if let Some(v) = cpe.version() {
                text.push(' ');
                text.push_str(v);
            }
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cwe78() -> CweId {
        CweId::new(78)
    }

    #[test]
    fn pattern_builder_accumulates_links() {
        let p = AttackPattern::new(
            CapecId::new(88),
            "OS Command Injection",
            "An adversary injects commands",
            Abstraction::Standard,
        )
        .with_likelihood(Likelihood::High)
        .with_severity(Severity::High)
        .with_weakness(cwe78())
        .with_weakness(cwe78())
        .with_prerequisite("user-controllable input reaches a shell");
        assert_eq!(p.related_weaknesses(), &[cwe78()]);
        assert_eq!(p.likelihood(), Some(Likelihood::High));
        assert!(p.search_text().contains("shell"));
    }

    #[test]
    fn weakness_search_text_includes_platforms() {
        let w = Weakness::new(cwe78(), "OS Command Injection", "improper neutralization")
            .with_platform("Linux")
            .with_consequence("execute unauthorized commands");
        let text = w.search_text();
        assert!(text.contains("Linux"));
        assert!(text.contains("unauthorized"));
    }

    #[test]
    fn vulnerability_search_text_includes_cpe() {
        let v = Vulnerability::new(CveId::new(2018, 101), "remote code execution in web vpn")
            .with_affected(CpeName::new("cisco", "asa").with_version("9.6"));
        let text = v.search_text();
        assert!(text.contains("cisco"));
        assert!(text.contains("asa"));
        assert!(text.contains("9.6"));
    }

    #[test]
    fn vulnerability_severity_comes_from_cvss() {
        let v = Vulnerability::new(CveId::new(2018, 101), "rce").with_cvss(
            "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
                .parse()
                .unwrap(),
        );
        assert_eq!(v.severity(), Some(Severity::Critical));
        let unscored = Vulnerability::new(CveId::new(2018, 102), "x");
        assert_eq!(unscored.severity(), None);
    }

    #[test]
    fn cpe_display_includes_version_when_present() {
        assert_eq!(CpeName::new("ni", "labview").to_string(), "ni:labview");
        assert_eq!(
            CpeName::new("ni", "labview")
                .with_version("2019")
                .to_string(),
            "ni:labview:2019"
        );
    }

    #[test]
    fn abstraction_round_trips() {
        for a in Abstraction::ALL {
            assert_eq!(a.as_str().parse::<Abstraction>().unwrap(), a);
        }
        assert!("Fuzzy".parse::<Abstraction>().is_err());
    }

    #[test]
    fn likelihood_is_ordered() {
        assert!(Likelihood::VeryLow < Likelihood::VeryHigh);
        assert_eq!(Likelihood::VeryHigh.to_string(), "Very High");
    }
}
