//! Typed identifiers for the three MITRE record families.

use core::fmt;
use core::str::FromStr;

/// Error parsing a CAPEC/CWE/CVE identifier from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIdError {
    input: String,
    expected: &'static str,
}

impl ParseIdError {
    fn new(input: &str, expected: &'static str) -> Self {
        ParseIdError {
            input: input.to_owned(),
            expected,
        }
    }
}

pub(crate) fn parse_id_error(input: &str, expected: &'static str) -> ParseIdError {
    ParseIdError::new(input, expected)
}

impl fmt::Display for ParseIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` is not a valid {} identifier",
            self.input, self.expected
        )
    }
}

impl std::error::Error for ParseIdError {}

/// A CAPEC attack pattern identifier, e.g. `CAPEC-88`.
///
/// # Examples
///
/// ```
/// use cpssec_attackdb::CapecId;
/// let id: CapecId = "CAPEC-88".parse()?;
/// assert_eq!(id.number(), 88);
/// assert_eq!(id.to_string(), "CAPEC-88");
/// # Ok::<(), cpssec_attackdb::ParseIdError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CapecId(u32);

/// A CWE weakness identifier, e.g. `CWE-78`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CweId(u32);

/// A CVE vulnerability identifier, e.g. `CVE-2018-0101`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CveId {
    year: u16,
    number: u32,
}

impl CapecId {
    /// Creates an identifier from its number.
    #[must_use]
    pub fn new(number: u32) -> Self {
        CapecId(number)
    }

    /// The numeric part.
    #[must_use]
    pub fn number(self) -> u32 {
        self.0
    }
}

impl CweId {
    /// Creates an identifier from its number.
    #[must_use]
    pub fn new(number: u32) -> Self {
        CweId(number)
    }

    /// The numeric part.
    #[must_use]
    pub fn number(self) -> u32 {
        self.0
    }
}

impl CveId {
    /// Creates an identifier from its year and sequence number.
    #[must_use]
    pub fn new(year: u16, number: u32) -> Self {
        CveId { year, number }
    }

    /// The year part.
    #[must_use]
    pub fn year(self) -> u16 {
        self.year
    }

    /// The sequence number part.
    #[must_use]
    pub fn number(self) -> u32 {
        self.number
    }
}

impl fmt::Display for CapecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CAPEC-{}", self.0)
    }
}

impl fmt::Display for CweId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CWE-{}", self.0)
    }
}

impl fmt::Display for CveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CVE-{}-{:04}", self.year, self.number)
    }
}

impl FromStr for CapecId {
    type Err = ParseIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.strip_prefix("CAPEC-")
            .and_then(|n| n.parse().ok())
            .map(CapecId)
            .ok_or_else(|| ParseIdError::new(s, "CAPEC"))
    }
}

impl FromStr for CweId {
    type Err = ParseIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.strip_prefix("CWE-")
            .and_then(|n| n.parse().ok())
            .map(CweId)
            .ok_or_else(|| ParseIdError::new(s, "CWE"))
    }
}

impl FromStr for CveId {
    type Err = ParseIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix("CVE-")
            .ok_or_else(|| ParseIdError::new(s, "CVE"))?;
        let (year, number) = rest
            .split_once('-')
            .ok_or_else(|| ParseIdError::new(s, "CVE"))?;
        if number.len() < 4 {
            return Err(ParseIdError::new(s, "CVE"));
        }
        Ok(CveId {
            year: year.parse().map_err(|_| ParseIdError::new(s, "CVE"))?,
            number: number.parse().map_err(|_| ParseIdError::new(s, "CVE"))?,
        })
    }
}

/// An identifier of any attack vector record, across the three families.
///
/// This is the shared currency between the corpus, the search engine, and
/// the analysis layer: a match result is a list of `AttackVectorId`s with
/// scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AttackVectorId {
    /// A CAPEC attack pattern.
    Pattern(CapecId),
    /// A CWE weakness.
    Weakness(CweId),
    /// A CVE vulnerability.
    Vulnerability(CveId),
}

impl AttackVectorId {
    /// Returns the pattern id if this is a pattern.
    #[must_use]
    pub fn as_pattern(self) -> Option<CapecId> {
        match self {
            AttackVectorId::Pattern(id) => Some(id),
            _ => None,
        }
    }

    /// Returns the weakness id if this is a weakness.
    #[must_use]
    pub fn as_weakness(self) -> Option<CweId> {
        match self {
            AttackVectorId::Weakness(id) => Some(id),
            _ => None,
        }
    }

    /// Returns the vulnerability id if this is a vulnerability.
    #[must_use]
    pub fn as_vulnerability(self) -> Option<CveId> {
        match self {
            AttackVectorId::Vulnerability(id) => Some(id),
            _ => None,
        }
    }
}

impl fmt::Display for AttackVectorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackVectorId::Pattern(id) => id.fmt(f),
            AttackVectorId::Weakness(id) => id.fmt(f),
            AttackVectorId::Vulnerability(id) => id.fmt(f),
        }
    }
}

impl From<CapecId> for AttackVectorId {
    fn from(id: CapecId) -> Self {
        AttackVectorId::Pattern(id)
    }
}

impl From<CweId> for AttackVectorId {
    fn from(id: CweId) -> Self {
        AttackVectorId::Weakness(id)
    }
}

impl From<CveId> for AttackVectorId {
    fn from(id: CveId) -> Self {
        AttackVectorId::Vulnerability(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capec_round_trips() {
        let id: CapecId = "CAPEC-88".parse().unwrap();
        assert_eq!(id, CapecId::new(88));
        assert_eq!(id.to_string(), "CAPEC-88");
    }

    #[test]
    fn cwe_round_trips() {
        let id: CweId = "CWE-78".parse().unwrap();
        assert_eq!(id, CweId::new(78));
        assert_eq!(id.to_string(), "CWE-78");
    }

    #[test]
    fn cve_round_trips_and_pads() {
        let id: CveId = "CVE-2018-0101".parse().unwrap();
        assert_eq!(id, CveId::new(2018, 101));
        assert_eq!(id.to_string(), "CVE-2018-0101");
        let big: CveId = "CVE-2021-44228".parse().unwrap();
        assert_eq!(big.to_string(), "CVE-2021-44228");
    }

    #[test]
    fn malformed_ids_are_rejected() {
        assert!("CAPEC88".parse::<CapecId>().is_err());
        assert!("CWE-".parse::<CweId>().is_err());
        assert!("CVE-2018".parse::<CveId>().is_err());
        assert!("CVE-2018-12".parse::<CveId>().is_err());
        assert!("cve-2018-0101".parse::<CveId>().is_err());
    }

    #[test]
    fn vector_id_display_delegates() {
        assert_eq!(AttackVectorId::from(CweId::new(78)).to_string(), "CWE-78");
        assert_eq!(
            AttackVectorId::from(CveId::new(2018, 101)).to_string(),
            "CVE-2018-0101"
        );
    }

    #[test]
    fn vector_id_accessors_discriminate() {
        let p = AttackVectorId::from(CapecId::new(1));
        assert!(p.as_pattern().is_some());
        assert!(p.as_weakness().is_none());
        assert!(p.as_vulnerability().is_none());
    }

    #[test]
    fn error_message_names_the_family() {
        let err = "x".parse::<CweId>().unwrap_err();
        assert!(err.to_string().contains("CWE"));
    }

    #[test]
    fn ordering_is_total_within_family() {
        assert!(CveId::new(2017, 999) < CveId::new(2018, 1));
        assert!(CveId::new(2018, 1) < CveId::new(2018, 2));
    }
}
