//! MITRE-shaped attack vector corpora for model-based security analysis.
//!
//! The paper's search process consumes "databases containing vulnerability,
//! weakness, and attack pattern data, such as the ones published by MITRE".
//! This crate provides the same three record families —
//! [`AttackPattern`] (CAPEC), [`Weakness`] (CWE), and [`Vulnerability`]
//! (CVE/NVD) — with their interconnections, a from-scratch CVSS v3.1
//! implementation, a small curated seed corpus covering every attribute in
//! the paper's Table 1, and a deterministic synthetic corpus generator that
//! scales the corpus to NVD-like magnitudes for experiments.
//!
//! # Examples
//!
//! ```
//! use cpssec_attackdb::{Corpus, seed};
//!
//! let corpus = seed::seed_corpus();
//! let cwe78 = "CWE-78".parse()?;
//! let weakness = corpus.weakness(cwe78).expect("seed contains CWE-78");
//! assert!(weakness.name().contains("OS Command"));
//! # Ok::<(), cpssec_attackdb::ParseIdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod cvss;
mod error;
mod id;
pub mod json;
pub mod jsonl;
mod record;
pub mod seed;
pub mod snapshot;
pub mod synth;

pub use corpus::{Corpus, CorpusStats};
pub use cvss::{
    AttackComplexity, AttackVectorMetric, CvssError, CvssVector, Impact, PrivilegesRequired, Scope,
    Severity, UserInteraction,
};
pub use error::AttackDbError;
pub use id::{AttackVectorId, CapecId, CveId, CweId, ParseIdError};
pub use record::{Abstraction, AttackPattern, CpeName, Likelihood, Vulnerability, Weakness};
