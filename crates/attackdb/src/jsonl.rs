//! Corpus interchange as JSON Lines.
//!
//! One record per line, `"type"` discriminated. This is the bridge to real
//! data: convert an NVD/CWE/CAPEC extract to this shape and load it with
//! [`from_jsonl`] instead of (or merged with) the built-in corpora.
//!
//! ```json
//! {"type":"pattern","id":"CAPEC-88","name":"OS Command Injection","abstraction":"Standard","description":"...","weaknesses":["CWE-78"],"likelihood":"High","severity":"High","prerequisites":["..."]}
//! {"type":"weakness","id":"CWE-78","name":"...","description":"...","platforms":["Linux"],"consequences":["..."],"mitigations":["..."]}
//! {"type":"vulnerability","id":"CVE-2018-0101","description":"...","cvss":"CVSS:3.1/...","weaknesses":["CWE-416"],"affected":[{"vendor":"cisco","product":"asa","version":"9.6"}]}
//! ```

use core::fmt;

use crate::json::{parse, write_escaped, JsonValue};
use crate::{
    Abstraction, AttackDbError, AttackPattern, Corpus, CpeName, CvssVector, Likelihood, Severity,
    Vulnerability, Weakness,
};

/// Errors loading a JSON Lines corpus.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JsonlError {
    /// A line failed to parse, with its 1-based line number.
    Line {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// A well-formed record could not be inserted (duplicate id).
    Corpus(AttackDbError),
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonlError::Line { line, detail } => write!(f, "line {line}: {detail}"),
            JsonlError::Corpus(err) => err.fmt(f),
        }
    }
}

impl std::error::Error for JsonlError {}

impl From<AttackDbError> for JsonlError {
    fn from(err: AttackDbError) -> Self {
        JsonlError::Corpus(err)
    }
}

fn line_error(line: usize, detail: impl Into<String>) -> JsonlError {
    JsonlError::Line {
        line,
        detail: detail.into(),
    }
}

/// Serializes a corpus to JSON Lines (patterns, then weaknesses, then
/// vulnerabilities, each in id order).
#[must_use]
pub fn to_jsonl(corpus: &Corpus) -> String {
    let mut out = String::new();
    for p in corpus.patterns() {
        write_pattern(&mut out, p);
        out.push('\n');
    }
    for w in corpus.weaknesses() {
        write_weakness(&mut out, w);
        out.push('\n');
    }
    for v in corpus.vulnerabilities() {
        write_vulnerability(&mut out, v);
        out.push('\n');
    }
    out
}

fn write_str_field(out: &mut String, key: &str, value: &str, first: bool) {
    if !first {
        out.push(',');
    }
    write_escaped(out, key);
    out.push(':');
    write_escaped(out, value);
}

fn write_str_array(out: &mut String, key: &str, values: impl Iterator<Item = String>) {
    out.push(',');
    write_escaped(out, key);
    out.push_str(":[");
    for (i, value) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, &value);
    }
    out.push(']');
}

fn write_pattern(out: &mut String, p: &AttackPattern) {
    out.push('{');
    write_str_field(out, "type", "pattern", true);
    write_str_field(out, "id", &p.id().to_string(), false);
    write_str_field(out, "name", p.name(), false);
    write_str_field(out, "abstraction", p.abstraction().as_str(), false);
    write_str_field(out, "description", p.description(), false);
    if let Some(likelihood) = p.likelihood() {
        write_str_field(out, "likelihood", likelihood.as_str(), false);
    }
    if let Some(severity) = p.typical_severity() {
        write_str_field(out, "severity", severity.as_str(), false);
    }
    write_str_array(
        out,
        "weaknesses",
        p.related_weaknesses().iter().map(ToString::to_string),
    );
    write_str_array(out, "prerequisites", p.prerequisites().iter().cloned());
    out.push('}');
}

fn write_weakness(out: &mut String, w: &Weakness) {
    out.push('{');
    write_str_field(out, "type", "weakness", true);
    write_str_field(out, "id", &w.id().to_string(), false);
    write_str_field(out, "name", w.name(), false);
    write_str_field(out, "description", w.description(), false);
    write_str_array(out, "platforms", w.platforms().iter().cloned());
    write_str_array(out, "consequences", w.consequences().iter().cloned());
    write_str_array(out, "mitigations", w.mitigations().iter().cloned());
    out.push('}');
}

fn write_vulnerability(out: &mut String, v: &Vulnerability) {
    out.push('{');
    write_str_field(out, "type", "vulnerability", true);
    write_str_field(out, "id", &v.id().to_string(), false);
    write_str_field(out, "description", v.description(), false);
    if let Some(cvss) = v.cvss() {
        write_str_field(out, "cvss", &cvss.to_string(), false);
    }
    write_str_array(
        out,
        "weaknesses",
        v.weaknesses().iter().map(ToString::to_string),
    );
    out.push(',');
    write_escaped(out, "affected");
    out.push_str(":[");
    for (i, cpe) in v.affected().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        write_str_field(out, "vendor", cpe.vendor(), true);
        write_str_field(out, "product", cpe.product(), false);
        if let Some(version) = cpe.version() {
            write_str_field(out, "version", version, false);
        }
        out.push('}');
    }
    out.push_str("]}");
}

/// Parses a JSON Lines corpus. Blank lines and `#` comment lines are
/// skipped.
///
/// # Errors
///
/// [`JsonlError::Line`] naming the first bad line, or
/// [`JsonlError::Corpus`] for duplicate ids.
pub fn from_jsonl(input: &str) -> Result<Corpus, JsonlError> {
    let mut corpus = Corpus::new();
    for (index, raw_line) in input.lines().enumerate() {
        let line_number = index + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let value = parse(line).map_err(|e| line_error(line_number, e.to_string()))?;
        let kind = value
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| line_error(line_number, "missing `type`"))?;
        match kind {
            "pattern" => corpus.add_pattern(read_pattern(&value, line_number)?)?,
            "weakness" => corpus.add_weakness(read_weakness(&value, line_number)?)?,
            "vulnerability" => {
                corpus.add_vulnerability(read_vulnerability(&value, line_number)?)?;
            }
            other => return Err(line_error(line_number, format!("unknown type `{other}`"))),
        }
    }
    Ok(corpus)
}

fn required_str<'a>(value: &'a JsonValue, key: &str, line: usize) -> Result<&'a str, JsonlError> {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| line_error(line, format!("missing string field `{key}`")))
}

fn string_list(value: &JsonValue, key: &str, line: usize) -> Result<Vec<String>, JsonlError> {
    match value.get(key) {
        None => Ok(Vec::new()),
        Some(JsonValue::Array(items)) => items
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| line_error(line, format!("`{key}` must contain strings")))
            })
            .collect(),
        Some(_) => Err(line_error(line, format!("`{key}` must be an array"))),
    }
}

fn parse_severity(text: &str, line: usize) -> Result<Severity, JsonlError> {
    match text {
        "None" => Ok(Severity::None),
        "Low" => Ok(Severity::Low),
        "Medium" => Ok(Severity::Medium),
        "High" => Ok(Severity::High),
        "Critical" => Ok(Severity::Critical),
        other => Err(line_error(line, format!("unknown severity `{other}`"))),
    }
}

fn parse_likelihood(text: &str, line: usize) -> Result<Likelihood, JsonlError> {
    Likelihood::ALL
        .iter()
        .copied()
        .find(|l| l.as_str() == text)
        .ok_or_else(|| line_error(line, format!("unknown likelihood `{text}`")))
}

fn read_pattern(value: &JsonValue, line: usize) -> Result<AttackPattern, JsonlError> {
    let id = required_str(value, "id", line)?
        .parse()
        .map_err(|e: crate::ParseIdError| line_error(line, e.to_string()))?;
    let abstraction: Abstraction = required_str(value, "abstraction", line)?
        .parse()
        .map_err(|e: crate::ParseIdError| line_error(line, e.to_string()))?;
    let mut pattern = AttackPattern::new(
        id,
        required_str(value, "name", line)?,
        required_str(value, "description", line)?,
        abstraction,
    );
    if let Some(text) = value.get("likelihood").and_then(JsonValue::as_str) {
        pattern = pattern.with_likelihood(parse_likelihood(text, line)?);
    }
    if let Some(text) = value.get("severity").and_then(JsonValue::as_str) {
        pattern = pattern.with_severity(parse_severity(text, line)?);
    }
    for cwe in string_list(value, "weaknesses", line)? {
        pattern = pattern.with_weakness(
            cwe.parse()
                .map_err(|e: crate::ParseIdError| line_error(line, e.to_string()))?,
        );
    }
    for prerequisite in string_list(value, "prerequisites", line)? {
        pattern = pattern.with_prerequisite(prerequisite);
    }
    Ok(pattern)
}

fn read_weakness(value: &JsonValue, line: usize) -> Result<Weakness, JsonlError> {
    let id = required_str(value, "id", line)?
        .parse()
        .map_err(|e: crate::ParseIdError| line_error(line, e.to_string()))?;
    let mut weakness = Weakness::new(
        id,
        required_str(value, "name", line)?,
        required_str(value, "description", line)?,
    );
    for platform in string_list(value, "platforms", line)? {
        weakness = weakness.with_platform(platform);
    }
    for consequence in string_list(value, "consequences", line)? {
        weakness = weakness.with_consequence(consequence);
    }
    for mitigation in string_list(value, "mitigations", line)? {
        weakness = weakness.with_mitigation(mitigation);
    }
    Ok(weakness)
}

fn read_vulnerability(value: &JsonValue, line: usize) -> Result<Vulnerability, JsonlError> {
    let id = required_str(value, "id", line)?
        .parse()
        .map_err(|e: crate::ParseIdError| line_error(line, e.to_string()))?;
    let mut vulnerability = Vulnerability::new(id, required_str(value, "description", line)?);
    if let Some(text) = value.get("cvss").and_then(JsonValue::as_str) {
        let cvss: CvssVector = text
            .parse()
            .map_err(|e: crate::CvssError| line_error(line, e.to_string()))?;
        vulnerability = vulnerability.with_cvss(cvss);
    }
    for cwe in string_list(value, "weaknesses", line)? {
        vulnerability = vulnerability.with_weakness(
            cwe.parse()
                .map_err(|e: crate::ParseIdError| line_error(line, e.to_string()))?,
        );
    }
    if let Some(affected) = value.get("affected") {
        let items = affected
            .as_array()
            .ok_or_else(|| line_error(line, "`affected` must be an array"))?;
        for item in items {
            let vendor = required_str(item, "vendor", line)?;
            let product = required_str(item, "product", line)?;
            let mut cpe = CpeName::new(vendor, product);
            if let Some(version) = item.get("version").and_then(JsonValue::as_str) {
                cpe = cpe.with_version(version);
            }
            vulnerability = vulnerability.with_affected(cpe);
        }
    }
    Ok(vulnerability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::seed_corpus;
    use crate::synth::{generate, SynthSpec};

    #[test]
    fn seed_corpus_round_trips() {
        let corpus = seed_corpus();
        let text = to_jsonl(&corpus);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, corpus);
    }

    #[test]
    fn synthetic_corpus_round_trips() {
        let corpus = generate(&SynthSpec::paper2020(9, 0.01));
        let back = from_jsonl(&to_jsonl(&corpus)).unwrap();
        assert_eq!(back, corpus);
    }

    #[test]
    fn blank_lines_and_comments_are_skipped() {
        let text = "\n# a comment\n\n{\"type\":\"weakness\",\"id\":\"CWE-1\",\"name\":\"n\",\"description\":\"d\"}\n";
        let corpus = from_jsonl(text).unwrap();
        assert_eq!(corpus.stats().weaknesses, 1);
    }

    #[test]
    fn optional_fields_default_empty() {
        let text = r#"{"type":"vulnerability","id":"CVE-2020-0001","description":"d"}"#;
        let corpus = from_jsonl(text).unwrap();
        let v = corpus
            .vulnerability("CVE-2020-0001".parse().unwrap())
            .unwrap();
        assert!(v.cvss().is_none());
        assert!(v.weaknesses().is_empty());
        assert!(v.affected().is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "{\"type\":\"weakness\",\"id\":\"CWE-1\",\"name\":\"n\",\"description\":\"d\"}\nnot json\n";
        let err = from_jsonl(text).unwrap_err();
        assert!(matches!(err, JsonlError::Line { line: 2, .. }), "{err}");
    }

    #[test]
    fn bad_ids_and_types_are_rejected() {
        assert!(
            from_jsonl(r#"{"type":"weakness","id":"WEAK-1","name":"n","description":"d"}"#)
                .is_err()
        );
        assert!(from_jsonl(r#"{"type":"exploit","id":"X-1"}"#).is_err());
        assert!(from_jsonl(r#"{"id":"CWE-1"}"#).is_err());
    }

    #[test]
    fn duplicate_ids_are_corpus_errors() {
        let line = r#"{"type":"weakness","id":"CWE-1","name":"n","description":"d"}"#;
        let text = format!("{line}\n{line}\n");
        assert!(matches!(
            from_jsonl(&text).unwrap_err(),
            JsonlError::Corpus(AttackDbError::DuplicateRecord(_))
        ));
    }

    #[test]
    fn special_characters_survive() {
        let mut corpus = Corpus::new();
        corpus
            .add_weakness(
                Weakness::new(
                    crate::CweId::new(9999),
                    "Weird \"name\" with \\ and \n newline",
                    "tabs\tand unicode café 😀",
                )
                .with_mitigation("escape\u{1}control"),
            )
            .unwrap();
        let back = from_jsonl(&to_jsonl(&corpus)).unwrap();
        assert_eq!(back, corpus);
    }
}
