//! The curated seed corpus.
//!
//! Hand-written records covering every attribute of the paper's Table 1
//! (Cisco ASA, NI RT Linux OS, Windows 7, LabVIEW, NI cRIO 9063/9064) plus
//! the weakness the paper highlights for the BPCS and SIS platforms
//! (CWE-78, OS Command Injection) and the attack patterns and weaknesses a
//! SCADA analysis plausibly surfaces. Identifiers and names follow the real
//! MITRE entries; descriptions are paraphrased. The seed corpus is small on
//! purpose — [`crate::synth`] scales it to NVD-like magnitudes.

use crate::{
    Abstraction, AttackPattern, CapecId, Corpus, CpeName, CveId, CweId, Likelihood, Severity,
    Vulnerability, Weakness,
};

fn capec(n: u32) -> CapecId {
    CapecId::new(n)
}

fn cwe(n: u32) -> CweId {
    CweId::new(n)
}

fn cve(year: u16, n: u32) -> CveId {
    CveId::new(year, n)
}

fn cvss(vector: &str) -> crate::CvssVector {
    vector.parse().expect("seed CVSS vectors are valid")
}

/// Builds the curated seed corpus.
///
/// The result is deterministic and validates cleanly:
/// no duplicate identifiers and no dangling cross-references.
///
/// # Examples
///
/// ```
/// use cpssec_attackdb::seed::seed_corpus;
/// let corpus = seed_corpus();
/// assert!(corpus.stats().vulnerabilities >= 21);
/// assert!(corpus.dangling_references().is_empty());
/// ```
#[must_use]
pub fn seed_corpus() -> Corpus {
    let mut c = Corpus::new();
    for w in weaknesses() {
        c.add_weakness(w).expect("seed weakness ids unique");
    }
    for p in patterns() {
        c.add_pattern(p).expect("seed pattern ids unique");
    }
    for v in vulnerabilities() {
        c.add_vulnerability(v)
            .expect("seed vulnerability ids unique");
    }
    c
}

fn weaknesses() -> Vec<Weakness> {
    vec![
        Weakness::new(
            cwe(20),
            "Improper Input Validation",
            "The product receives input or data, but it does not validate or incorrectly \
             validates that the input has the properties required to process it safely.",
        )
        .with_platform("language-neutral")
        .with_consequence("unexpected state or crash")
        .with_mitigation(
            "validate all input against an allowlist of expected values",
        ),
        Weakness::new(
            cwe(22),
            "Improper Limitation of a Pathname to a Restricted Directory (Path Traversal)",
            "The product uses external input to construct a pathname without neutralizing \
             sequences such as dot dot slash that resolve outside the restricted directory.",
        )
        .with_consequence("read or modify files outside intended directory")
        .with_mitigation(
            "canonicalize paths before authorization checks",
        ),
        Weakness::new(
            cwe(78),
            "Improper Neutralization of Special Elements used in an OS Command (OS Command Injection)",
            "The product constructs all or part of an operating system command using \
             externally-influenced input from an upstream component, but it does not \
             neutralize special elements that could modify the intended command.",
        )
        .with_platform("Linux")
        .with_platform("Windows")
        .with_consequence("execute unauthorized operating system commands on the platform")
        .with_mitigation(
            "use vetted library calls that invoke commands without a shell",
        )
        .with_mitigation(
            "run the service with the minimum privileges required for its function",
        ),
        Weakness::new(
            cwe(79),
            "Improper Neutralization of Input During Web Page Generation (Cross-site Scripting)",
            "The product does not neutralize user-controllable input before it is placed \
             in output used as a web page served to other users.",
        )
        .with_consequence("run attacker script in victim browser"),
        Weakness::new(
            cwe(89),
            "Improper Neutralization of Special Elements used in an SQL Command (SQL Injection)",
            "The product constructs an SQL command using externally-influenced input \
             without neutralizing special elements that can modify the query.",
        )
        .with_consequence("read or modify application data"),
        Weakness::new(
            cwe(119),
            "Improper Restriction of Operations within the Bounds of a Memory Buffer",
            "The product performs operations on a memory buffer, but it reads from or \
             writes to a location outside the buffer's intended boundary.",
        )
        .with_platform("C")
        .with_consequence("arbitrary code execution or crash")
        .with_mitigation(
            "compile with bounds checking and exploit mitigations enabled",
        ),
        Weakness::new(
            cwe(120),
            "Buffer Copy without Checking Size of Input (Classic Buffer Overflow)",
            "The product copies an input buffer to an output buffer without verifying \
             that the size of the input is less than the size of the output buffer.",
        )
        .with_consequence("stack or heap corruption leading to code execution"),
        Weakness::new(
            cwe(125),
            "Out-of-bounds Read",
            "The product reads data past the end, or before the beginning, of the \
             intended buffer, typically exposing sensitive memory contents.",
        )
        .with_consequence("information disclosure"),
        Weakness::new(
            cwe(190),
            "Integer Overflow or Wraparound",
            "The product performs a calculation that can produce an integer overflow \
             when the logic assumes the value is larger than the maximum representable.",
        )
        .with_consequence("undersized allocation and memory corruption"),
        Weakness::new(
            cwe(200),
            "Exposure of Sensitive Information to an Unauthorized Actor",
            "The product exposes sensitive information to an actor that is not \
             explicitly authorized to have access to that information.",
        )
        .with_consequence("loss of confidentiality"),
        Weakness::new(
            cwe(287),
            "Improper Authentication",
            "When an actor claims to have a given identity, the product does not prove \
             or insufficiently proves that the claim is correct.",
        )
        .with_consequence("authentication bypass")
        .with_mitigation(
            "require multi-factor authentication for administrative interfaces",
        ),
        Weakness::new(
            cwe(306),
            "Missing Authentication for Critical Function",
            "The product does not perform any authentication for functionality that \
             requires a provable user identity, such as an engineering write to a \
             controller over an industrial protocol.",
        )
        .with_platform("ICS/OT")
        .with_consequence("unauthenticated control actions on field devices")
        .with_mitigation(
            "require authenticated sessions for every engineering and write function",
        )
        .with_mitigation(
            "place a physical key switch in front of safety-relevant reprogramming",
        ),
        Weakness::new(
            cwe(311),
            "Missing Encryption of Sensitive Data",
            "The product does not encrypt sensitive or critical information before \
             storage or transmission, exposing fieldbus and supervisory traffic.",
        )
        .with_platform("ICS/OT")
        .with_consequence("traffic interception and replay")
        .with_mitigation(
            "encrypt and authenticate supervisory and fieldbus traffic end to end",
        ),
        Weakness::new(
            cwe(326),
            "Inadequate Encryption Strength",
            "The product stores or transmits sensitive data using an encryption scheme \
             that is theoretically sound but not strong enough for the protection required.",
        )
        .with_consequence("offline key or credential recovery")
        .with_mitigation(
            "use current, reviewed cipher suites with adequate key lengths",
        ),
        Weakness::new(
            cwe(352),
            "Cross-Site Request Forgery",
            "The web application does not sufficiently verify whether a request was \
             intentionally provided by the user who submitted it.",
        )
        .with_consequence("unintended state-changing requests"),
        Weakness::new(
            cwe(400),
            "Uncontrolled Resource Consumption",
            "The product does not properly control the allocation and maintenance of a \
             limited resource, allowing an actor to exhaust it by flooding the service.",
        )
        .with_consequence("denial of service of the control service")
        .with_mitigation(
            "rate-limit requests and bound per-session resource allocation",
        ),
        Weakness::new(
            cwe(416),
            "Use After Free",
            "The product reuses or references memory after it has been freed, which can \
             cause the program to crash or execute attacker-controlled code.",
        )
        .with_consequence("code execution")
        .with_mitigation(
            "use memory-safe languages or ownership disciplines for parsers",
        ),
        Weakness::new(
            cwe(476),
            "NULL Pointer Dereference",
            "The product dereferences a pointer that it expects to be valid but is NULL, \
             typically causing a crash or exit of the runtime.",
        )
        .with_consequence("denial of service"),
        Weakness::new(
            cwe(787),
            "Out-of-bounds Write",
            "The product writes data past the end, or before the beginning, of the \
             intended buffer, corrupting adjacent memory.",
        )
        .with_consequence("code execution"),
        Weakness::new(
            cwe(798),
            "Use of Hard-coded Credentials",
            "The product contains hard-coded credentials, such as a password or \
             cryptographic key, which it uses for inbound authentication or outbound \
             communication to field components.",
        )
        .with_platform("ICS/OT")
        .with_consequence("trivial authentication bypass")
        .with_mitigation(
            "store credentials outside the firmware image and rotate them per device",
        ),
        Weakness::new(
            cwe(829),
            "Inclusion of Functionality from Untrusted Control Sphere",
            "The product imports executable functionality, such as a library or project \
             file, from a source outside its trusted control sphere.",
        )
        .with_consequence("execution of untrusted logic")
        .with_mitigation(
            "verify signatures of every loaded library, project, and firmware image",
        ),
    ]
}

fn patterns() -> Vec<AttackPattern> {
    vec![
        AttackPattern::new(
            capec(1),
            "Accessing Functionality Not Properly Constrained by ACLs",
            "An adversary exploits missing or incorrectly configured access control \
             lists to reach functionality that should be restricted, such as \
             engineering functions of a controller platform.",
            Abstraction::Standard,
        )
        .with_likelihood(Likelihood::High)
        .with_severity(Severity::High)
        .with_weakness(cwe(306)),
        AttackPattern::new(
            capec(10),
            "Buffer Overflow via Environment Variables",
            "An adversary supplies an overly long environment variable to a program \
             that copies it into a fixed-size buffer without bounds checking.",
            Abstraction::Detailed,
        )
        .with_likelihood(Likelihood::Low)
        .with_severity(Severity::High)
        .with_weakness(cwe(120)),
        AttackPattern::new(
            capec(66),
            "SQL Injection",
            "An adversary supplies crafted input that is incorporated into an SQL \
             query, altering its meaning to read or modify data.",
            Abstraction::Standard,
        )
        .with_likelihood(Likelihood::High)
        .with_severity(Severity::High)
        .with_weakness(cwe(89))
        .with_weakness(cwe(20)),
        AttackPattern::new(
            capec(88),
            "OS Command Injection",
            "An adversary injects operating system commands through an externally \
             influenced input that the target uses to build a shell command, gaining \
             command execution on the platform with the privileges of the service.",
            Abstraction::Standard,
        )
        .with_likelihood(Likelihood::High)
        .with_severity(Severity::High)
        .with_weakness(cwe(78))
        .with_weakness(cwe(20))
        .with_prerequisite("user-controllable input is used to construct a command line"),
        AttackPattern::new(
            capec(94),
            "Adversary in the Middle",
            "An adversary inserts themselves into the communication channel between \
             two components, observing and manipulating supervisory or fieldbus \
             traffic in transit.",
            Abstraction::Meta,
        )
        .with_likelihood(Likelihood::Medium)
        .with_severity(Severity::High)
        .with_weakness(cwe(311))
        .with_weakness(cwe(287)),
        AttackPattern::new(
            capec(98),
            "Phishing",
            "An adversary masquerades as a trustworthy entity to lure an operator or \
             engineer into revealing credentials or opening a malicious attachment \
             on a workstation.",
            Abstraction::Standard,
        )
        .with_likelihood(Likelihood::High)
        .with_severity(Severity::Medium)
        .with_weakness(cwe(287)),
        AttackPattern::new(
            capec(112),
            "Brute Force",
            "An adversary systematically tries many candidate secrets against an \
             authentication interface until one succeeds.",
            Abstraction::Meta,
        )
        .with_likelihood(Likelihood::Medium)
        .with_severity(Severity::Medium)
        .with_weakness(cwe(326))
        .with_weakness(cwe(287)),
        AttackPattern::new(
            capec(125),
            "Flooding",
            "An adversary consumes the resources of a target by sending a high volume \
             of traffic, denying service to legitimate supervisory communication.",
            Abstraction::Meta,
        )
        .with_likelihood(Likelihood::Medium)
        .with_severity(Severity::Medium)
        .with_weakness(cwe(400)),
        AttackPattern::new(
            capec(130),
            "Excessive Allocation",
            "An adversary causes the target to allocate excessive resources per \
             request, exhausting memory or handles on the service platform.",
            Abstraction::Standard,
        )
        .with_likelihood(Likelihood::Medium)
        .with_severity(Severity::Medium)
        .with_weakness(cwe(400)),
        AttackPattern::new(
            capec(148),
            "Content Spoofing",
            "An adversary modifies content presented to an operator, such as process \
             values on a display, so decisions are made on falsified data.",
            Abstraction::Meta,
        )
        .with_likelihood(Likelihood::Medium)
        .with_severity(Severity::High)
        .with_weakness(cwe(311)),
        AttackPattern::new(
            capec(151),
            "Identity Spoofing",
            "An adversary assumes the identity of a legitimate node or user to gain \
             the associated trust, for example spoofing a sensor address on a bus.",
            Abstraction::Meta,
        )
        .with_likelihood(Likelihood::Medium)
        .with_severity(Severity::High)
        .with_weakness(cwe(287)),
        AttackPattern::new(
            capec(153),
            "Input Data Manipulation",
            "An adversary exploits weaknesses in input validation by manipulating the \
             content of request parameters, fields, or protocol registers.",
            Abstraction::Meta,
        )
        .with_likelihood(Likelihood::High)
        .with_severity(Severity::Medium)
        .with_weakness(cwe(20)),
        AttackPattern::new(
            capec(169),
            "Footprinting",
            "An adversary engages in probing and exploration activities to identify \
             components, open services, and versions of the target system.",
            Abstraction::Meta,
        )
        .with_likelihood(Likelihood::High)
        .with_severity(Severity::Low)
        .with_weakness(cwe(200)),
        AttackPattern::new(
            capec(175),
            "Code Inclusion",
            "An adversary causes the target to load and execute code from an \
             attacker-controlled source, such as a project library on a share.",
            Abstraction::Meta,
        )
        .with_likelihood(Likelihood::Medium)
        .with_severity(Severity::High)
        .with_weakness(cwe(829)),
        AttackPattern::new(
            capec(184),
            "Software Integrity Attack",
            "An adversary subverts the integrity of software during distribution or \
             update so the victim installs attacker-modified logic.",
            Abstraction::Meta,
        )
        .with_likelihood(Likelihood::Low)
        .with_severity(Severity::Critical)
        .with_weakness(cwe(829)),
        AttackPattern::new(
            capec(186),
            "Malicious Software Update",
            "An adversary delivers a malicious update, such as modified controller \
             firmware or runtime logic, through an update channel the victim trusts.",
            Abstraction::Standard,
        )
        .with_likelihood(Likelihood::Low)
        .with_severity(Severity::Critical)
        .with_weakness(cwe(829))
        .with_weakness(cwe(287)),
        AttackPattern::new(
            capec(192),
            "Protocol Analysis",
            "An adversary passively captures and decodes protocol traffic to recover \
             structure, commands, and secrets of an industrial protocol.",
            Abstraction::Meta,
        )
        .with_likelihood(Likelihood::High)
        .with_severity(Severity::Low)
        .with_weakness(cwe(311))
        .with_weakness(cwe(200)),
        AttackPattern::new(
            capec(216),
            "Communication Channel Manipulation",
            "An adversary manipulates a communication channel between components to \
             inject, drop, or reorder messages, disturbing supervisory control.",
            Abstraction::Meta,
        )
        .with_likelihood(Likelihood::Medium)
        .with_severity(Severity::High)
        .with_weakness(cwe(311)),
        AttackPattern::new(
            capec(248),
            "Command Injection",
            "An adversary injects additional commands or parameters into an \
             interpreter, service, or protocol handler through unvalidated input.",
            Abstraction::Meta,
        )
        .with_likelihood(Likelihood::High)
        .with_severity(Severity::High)
        .with_weakness(cwe(78))
        .with_weakness(cwe(20)),
        AttackPattern::new(
            capec(441),
            "Malicious Logic Insertion",
            "An adversary inserts malicious logic into a product or component, such \
             as a safety controller, to trigger at a later time (as in the Triton \
             incident against safety instrumented systems).",
            Abstraction::Standard,
        )
        .with_likelihood(Likelihood::Low)
        .with_severity(Severity::Critical)
        .with_weakness(cwe(829))
        .with_weakness(cwe(306)),
    ]
}

fn vulnerabilities() -> Vec<Vulnerability> {
    vec![
        // --- Cisco ASA (control firewall) -------------------------------
        Vulnerability::new(
            cve(2018, 101),
            "A vulnerability in the XML parser of the webvpn feature of Cisco Adaptive \
             Security Appliance (ASA) software could allow an unauthenticated remote \
             attacker to cause a reload or remotely execute code.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"))
        .with_weakness(cwe(416))
        .with_affected(CpeName::new("cisco", "asa").with_version("9.6")),
        Vulnerability::new(
            cve(2016, 6366),
            "A buffer overflow in the SNMP code of Cisco Adaptive Security Appliance \
             (ASA) firewall software allows remote authenticated attackers to execute \
             arbitrary code via crafted SNMP packets.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:A/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H"))
        .with_weakness(cwe(120))
        .with_affected(CpeName::new("cisco", "asa")),
        Vulnerability::new(
            cve(2020, 3452),
            "A path traversal vulnerability in the web services interface of Cisco \
             Adaptive Security Appliance (ASA) software could allow an unauthenticated \
             remote attacker to read sensitive files.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N"))
        .with_weakness(cwe(22))
        .with_affected(CpeName::new("cisco", "asa")),
        // --- Windows 7 (programming workstation) ------------------------
        Vulnerability::new(
            cve(2017, 144),
            "The SMBv1 server in Microsoft Windows 7 and other Windows versions allows \
             remote attackers to execute arbitrary code via crafted packets, as \
             exploited by the EternalBlue exploit.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H"))
        .with_weakness(cwe(20))
        .with_affected(CpeName::new("microsoft", "windows 7")),
        Vulnerability::new(
            cve(2019, 708),
            "A remote code execution vulnerability exists in Remote Desktop Services \
             on Microsoft Windows 7 when an unauthenticated attacker connects using \
             RDP and sends specially crafted requests (BlueKeep).",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"))
        .with_weakness(cwe(416))
        .with_affected(CpeName::new("microsoft", "windows 7")),
        Vulnerability::new(
            cve(2010, 2568),
            "Microsoft Windows 7 allows local users or remote attackers to execute \
             arbitrary code via a crafted .LNK shortcut file, as exploited by the \
             Stuxnet malware against SCADA engineering workstations.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:L/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H"))
        .with_weakness(cwe(20))
        .with_affected(CpeName::new("microsoft", "windows 7")),
        Vulnerability::new(
            cve(2017, 143),
            "The SMBv1 server in Microsoft Windows 7 allows remote attackers to \
             execute arbitrary code via crafted packets (EternalRomance family).",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H"))
        .with_weakness(cwe(20))
        .with_affected(CpeName::new("microsoft", "windows 7")),
        // --- NI RT Linux (controller operating system) -------------------
        Vulnerability::new(
            cve(2016, 5195),
            "A race condition in the memory subsystem of the Linux kernel, as used in \
             NI Real-Time Linux distributions, allows local users to gain write \
             access to read-only memory mappings (Dirty COW).",
        )
        .with_cvss(cvss("CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H"))
        .with_weakness(cwe(416))
        .with_affected(CpeName::new("ni", "rt linux")),
        Vulnerability::new(
            cve(2019, 11477),
            "The TCP SACK handling of the Linux kernel, as shipped in NI Real-Time \
             Linux OS images, allows a remote attacker to cause a kernel panic via \
             crafted selective acknowledgements (SACK Panic).",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H"))
        .with_weakness(cwe(190))
        .with_affected(CpeName::new("ni", "rt linux")),
        Vulnerability::new(
            cve(2017, 1000112),
            "An exploitable memory corruption in the UDP fragmentation offload code of \
             the Linux kernel used by NI RT Linux allows local privilege escalation.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:L/AC:H/PR:L/UI:N/S:U/C:H/I:H/A:H"))
        .with_weakness(cwe(787))
        .with_affected(CpeName::new("ni", "rt linux")),
        // --- LabVIEW (workstation software) ------------------------------
        Vulnerability::new(
            cve(2017, 2779),
            "An exploitable memory corruption exists in the RSRC segment parsing \
             functionality of National Instruments LabVIEW; a specially crafted VI \
             file can cause attacker-controlled code execution.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:L/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H"))
        .with_weakness(cwe(787))
        .with_affected(CpeName::new("ni", "labview").with_version("2016")),
        Vulnerability::new(
            cve(2015, 6000),
            "National Instruments LabVIEW permits loading of VI project libraries from \
             unqualified paths, allowing execution of untrusted logic placed by a \
             local attacker.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:L/AC:L/PR:L/UI:R/S:U/C:H/I:H/A:N"))
        .with_weakness(cwe(829))
        .with_affected(CpeName::new("ni", "labview")),
        Vulnerability::new(
            cve(2019, 5601),
            "A denial of service in National Instruments LabVIEW runtime when parsing \
             malformed TDMS data files causes the development environment to crash.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:L/AC:L/PR:N/UI:R/S:U/C:N/I:N/A:H"))
        .with_weakness(cwe(476))
        .with_affected(CpeName::new("ni", "labview")),
        // --- NI cRIO 9063 / 9064 (BPCS and SIS platforms) ----------------
        Vulnerability::new(
            cve(2017, 2778),
            "The configuration web interface of National Instruments cRIO 9063 and \
             cRIO 9064 CompactRIO controllers permits unauthenticated changes to \
             system settings, allowing remote reconfiguration of the controller.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:H/A:H"))
        .with_weakness(cwe(306))
        .with_affected(CpeName::new("ni", "crio 9063"))
        .with_affected(CpeName::new("ni", "crio 9064")),
        Vulnerability::new(
            cve(2018, 16804),
            "The firmware update mechanism of National Instruments cRIO 9063 and cRIO \
             9064 controllers does not verify image signatures, allowing installation \
             of modified firmware by an attacker with network access.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H"))
        .with_weakness(cwe(829))
        .with_affected(CpeName::new("ni", "crio 9063"))
        .with_affected(CpeName::new("ni", "crio 9064")),
        Vulnerability::new(
            cve(2019, 9997),
            "Hard-coded maintenance credentials in National Instruments cRIO 9063 and \
             cRIO 9064 controller images allow authentication bypass on the embedded \
             management service.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:N"))
        .with_weakness(cwe(798))
        .with_affected(CpeName::new("ni", "crio 9063"))
        .with_affected(CpeName::new("ni", "crio 9064")),
        // --- Generic ICS records that should not match Table 1 queries ---
        Vulnerability::new(
            cve(2014, 692),
            "A stack-based buffer overflow in a third-party OPC server allows remote \
             attackers to execute arbitrary code via a long topic name.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"))
        .with_weakness(cwe(120))
        .with_affected(CpeName::new("example", "opc server")),
        Vulnerability::new(
            cve(2015, 5374),
            "A crafted packet sent to the MODBUS service of a protection relay causes \
             a defect mode requiring manual restart, resulting in denial of service.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H"))
        .with_weakness(cwe(400))
        .with_affected(CpeName::new("example", "protection relay")),
        Vulnerability::new(
            cve(2018, 7522),
            "The engineering service of a safety instrumented system workstation \
             protocol permits unauthenticated program downloads to the safety \
             controller, as abused by the Triton/Trisis malware.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H"))
        .with_weakness(cwe(306))
        .with_affected(CpeName::new("example", "sis workstation")),
        Vulnerability::new(
            cve(2012, 4690),
            "Improper input validation in a distributed control system historian \
             service allows remote attackers to cause a service restart via a \
             malformed record.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:L"))
        .with_weakness(cwe(20))
        .with_affected(CpeName::new("example", "historian")),
        Vulnerability::new(
            cve(2016, 2200),
            "A cross-site scripting issue in the web interface of an industrial \
             ethernet switch allows injection of script into the management session.",
        )
        .with_cvss(cvss("CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N"))
        .with_weakness(cwe(79))
        .with_affected(CpeName::new("example", "ethernet switch")),
    ]
}

/// The six attribute strings of the paper's Table 1, in row order.
#[must_use]
pub fn table1_attributes() -> [&'static str; 6] {
    [
        "Cisco ASA",
        "NI RT Linux OS",
        "Windows 7",
        "Labview",
        "NI cRIO 9063",
        "NI cRIO 9064",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_is_internally_consistent() {
        let c = seed_corpus();
        assert!(c.dangling_references().is_empty());
        let s = c.stats();
        assert_eq!(s.patterns, 20);
        assert_eq!(s.weaknesses, 21);
        assert_eq!(s.vulnerabilities, 21);
    }

    #[test]
    fn cwe78_links_to_command_injection_patterns() {
        let c = seed_corpus();
        let patterns = c.patterns_for_weakness(cwe(78));
        assert!(patterns.contains(&capec(88)));
        assert!(patterns.contains(&capec(248)));
    }

    #[test]
    fn every_table1_product_has_a_vulnerability() {
        let c = seed_corpus();
        for needle in [
            "asa",
            "windows 7",
            "rt linux",
            "labview",
            "crio 9063",
            "crio 9064",
        ] {
            let hit = c.vulnerabilities().any(|v| {
                v.affected()
                    .iter()
                    .any(|cpe| cpe.product().contains(needle))
            });
            assert!(hit, "no seed vulnerability affects `{needle}`");
        }
    }

    #[test]
    fn all_seed_vulnerabilities_are_scored() {
        let c = seed_corpus();
        assert!(c.vulnerabilities().all(|v| v.cvss().is_some()));
    }

    #[test]
    fn crio_vulnerabilities_cover_both_models() {
        let c = seed_corpus();
        let shared: Vec<_> = c
            .vulnerabilities()
            .filter(|v| {
                v.affected().iter().any(|p| p.product() == "crio 9063")
                    && v.affected().iter().any(|p| p.product() == "crio 9064")
            })
            .collect();
        assert_eq!(shared.len(), 3);
    }

    #[test]
    fn seed_is_deterministic() {
        assert_eq!(seed_corpus(), seed_corpus());
    }
}
