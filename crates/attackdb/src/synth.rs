//! Deterministic synthetic corpus generation.
//!
//! The paper ran its search against the live MITRE feeds (hundreds of
//! thousands of records). Offline, we substitute a generated corpus whose
//! *composition* reproduces what Table 1 depends on: commodity platforms
//! (Windows, Linux) are mentioned by thousands of vulnerability records and
//! by tens of patterns and weaknesses, while niche hardware (CompactRIO) and
//! domain tools (LabVIEW) are mentioned by a handful of vulnerabilities and
//! no patterns or weaknesses. Generation is fully deterministic given the
//! spec's seed; two runs produce byte-identical corpora.
//!
//! The shape knobs live in [`ProductProfile`]; the paper's Table 1
//! magnitudes are packaged as [`SynthSpec::paper2020`].

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{
    Abstraction, AttackComplexity, AttackPattern, AttackVectorMetric, CapecId, Corpus, CpeName,
    CveId, CvssVector, CweId, Impact, PrivilegesRequired, Scope, UserInteraction, Vulnerability,
    Weakness,
};

/// How strongly one product family is represented in the corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductProfile {
    /// Stable key, used in deterministic ordering.
    pub key: String,
    /// The prose used to mention the product inside generated descriptions.
    /// Matching works on the tokens of this mention, so it must contain the
    /// tokens the corresponding model attribute will be queried with.
    pub mention: String,
    /// Vendor/product recorded in the CPE field of generated records.
    pub cpe: (String, String),
    /// The prose used when a *pattern* or *weakness* mentions the product's
    /// platform. Defaults to [`mention`](Self::mention); set it to a
    /// platform-only phrase (no vendor prefix) when the vendor token is
    /// shared across product lines — otherwise the vendor name becomes a
    /// spuriously distinctive term inside the small pattern/weakness
    /// indices and unrelated products cross-match.
    pub platform_hint: Option<String>,
    /// Number of vulnerability records mentioning the product.
    pub vulnerabilities: usize,
    /// Number of attack pattern records mentioning the product's platform.
    pub patterns: usize,
    /// Number of weakness records mentioning the product's platform.
    pub weaknesses: usize,
}

impl ProductProfile {
    /// Creates a profile with all counts zero.
    pub fn new(
        key: impl Into<String>,
        mention: impl Into<String>,
        vendor: impl Into<String>,
        product: impl Into<String>,
    ) -> Self {
        ProductProfile {
            key: key.into(),
            mention: mention.into(),
            cpe: (vendor.into(), product.into()),
            platform_hint: None,
            vulnerabilities: 0,
            patterns: 0,
            weaknesses: 0,
        }
    }

    /// Sets the platform phrase used by pattern/weakness records
    /// (builder style). See [`platform_hint`](Self::platform_hint).
    #[must_use]
    pub fn with_platform_hint(mut self, hint: impl Into<String>) -> Self {
        self.platform_hint = Some(hint.into());
        self
    }

    /// The phrase pattern/weakness records use for this product's platform.
    #[must_use]
    pub fn platform(&self) -> &str {
        self.platform_hint.as_deref().unwrap_or(&self.mention)
    }

    /// Sets the record counts (builder style).
    #[must_use]
    pub fn with_counts(
        mut self,
        vulnerabilities: usize,
        patterns: usize,
        weaknesses: usize,
    ) -> Self {
        self.vulnerabilities = vulnerabilities;
        self.patterns = patterns;
        self.weaknesses = weaknesses;
        self
    }
}

/// A complete generation specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// RNG seed; everything else equal, the same seed gives the same corpus.
    pub seed: u64,
    /// Generic attack patterns mentioning no profiled product.
    pub background_patterns: usize,
    /// Generic weaknesses mentioning no profiled product.
    pub background_weaknesses: usize,
    /// Generic vulnerabilities mentioning no profiled product.
    pub background_vulnerabilities: usize,
    /// Probability that a generated vulnerability maps to one of the
    /// *classic* CWE ids (CWE-20, CWE-78, …) instead of a generated one.
    /// The classic ids live in the curated seed corpus, so a standalone
    /// synthetic corpus generated with a nonzero bias carries dangling
    /// references until merged with the seed — exactly like real NVD
    /// snapshots reference CWE entries they do not contain.
    pub classic_weakness_bias: f64,
    /// Product families to represent.
    pub profiles: Vec<ProductProfile>,
}

/// CWE ids present in the curated seed corpus that real CVEs map to most
/// often.
pub const CLASSIC_CWES: [u32; 15] = [
    20, 22, 78, 79, 89, 119, 125, 200, 287, 306, 311, 400, 416, 787, 798,
];

impl SynthSpec {
    /// An empty spec with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SynthSpec {
            seed,
            background_patterns: 0,
            background_weaknesses: 0,
            background_vulnerabilities: 0,
            classic_weakness_bias: 0.0,
            profiles: Vec::new(),
        }
    }

    /// The Table 1 composition of the paper, at a linear `scale` applied to
    /// the vulnerability counts (pattern/weakness counts are small and kept
    /// exact). `scale = 1.0` reproduces the paper's magnitudes; CI-friendly
    /// runs use `0.05`–`0.1`.
    ///
    /// The counts leave room for the curated seed corpus
    /// ([`crate::seed::seed_corpus`]) so that `seed + synthetic` lands on
    /// the paper's totals for the small rows (LabVIEW 3+3 = 6,
    /// cRIO 3+4 = 7).
    #[must_use]
    pub fn paper2020(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let v = |n: usize| ((n as f64 * scale).round() as usize).max(1);
        SynthSpec {
            seed,
            background_patterns: 500,
            background_weaknesses: 700,
            background_vulnerabilities: v(12_000),
            classic_weakness_bias: 0.15,
            profiles: vec![
                ProductProfile::new(
                    "cisco-asa",
                    "Cisco Adaptive Security Appliance ASA software",
                    "cisco",
                    "asa",
                )
                .with_platform_hint("Cisco ASA firewall appliances")
                .with_counts(v(3776).saturating_sub(3), 2, 1),
                ProductProfile::new(
                    "ni-rt-linux",
                    "the Linux kernel as used in NI Real-Time Linux OS distributions",
                    "ni",
                    "rt linux",
                )
                .with_platform_hint("Linux operating system")
                .with_counts(v(9673).saturating_sub(3), 54, 75),
                ProductProfile::new("windows-7", "Microsoft Windows 7", "microsoft", "windows 7")
                    .with_platform_hint("Microsoft Windows operating system")
                    .with_counts(v(6627).saturating_sub(4), 41, 73),
                ProductProfile::new("labview", "National Instruments LabVIEW", "ni", "labview")
                    .with_counts(3, 0, 0),
                ProductProfile::new(
                    "crio",
                    "National Instruments cRIO 9063 and cRIO 9064 CompactRIO controllers",
                    "ni",
                    "crio",
                )
                .with_counts(4, 0, 0),
            ],
        }
    }
}

const FLAWS: &[&str] = &[
    "A buffer overflow",
    "An improper input validation issue",
    "A use-after-free defect",
    "An out-of-bounds read",
    "An out-of-bounds write",
    "A race condition",
    "An integer overflow",
    "A path traversal issue",
    "A cross-site scripting issue",
    "An authentication bypass",
    "A privilege escalation flaw",
    "A denial of service condition",
    "A memory corruption defect",
    "An information disclosure",
    "A null pointer dereference",
];

const COMPONENTS: &[&str] = &[
    "network stack",
    "web interface",
    "management service",
    "parsing routine",
    "update mechanism",
    "session handler",
    "configuration service",
    "protocol handler",
    "file parser",
    "kernel driver",
    "graphics subsystem",
    "scripting engine",
    "authentication module",
    "logging facility",
    "remote procedure service",
];

const ACTORS: &[&str] = &[
    "a remote attacker",
    "a local user",
    "an unauthenticated attacker",
    "an authenticated user",
    "an adjacent attacker",
];

const CONSEQUENCES: &[&str] = &[
    "execute arbitrary code",
    "cause a denial of service",
    "read sensitive memory",
    "modify configuration data",
    "escalate privileges",
    "bypass authentication",
    "crash the service",
    "obtain credentials",
];

const FAKE_PRODUCTS: &[(&str, &str)] = &[
    ("initech", "router firmware"),
    ("globex", "plc runtime"),
    ("umbrella", "historian server"),
    ("roadrunner", "hmi panel"),
    ("tyrell", "gateway appliance"),
    ("wayne", "badge system"),
    ("stark", "telemetry agent"),
    ("wonka", "batch manager"),
    ("soylent", "report generator"),
    ("hooli", "message broker"),
    ("vandelay", "database engine"),
    ("dunder", "print spooler"),
    ("prestige", "media decoder"),
    ("oceanic", "flight recorder"),
    ("cyberdyne", "vision module"),
];

const PATTERN_VERBS: &[&str] = &[
    "Manipulation",
    "Abuse",
    "Spoofing",
    "Flooding",
    "Injection",
    "Interception",
    "Enumeration",
    "Tampering",
    "Replay",
    "Exhaustion",
];

const PATTERN_OBJECTS: &[&str] = &[
    "of Session Tokens",
    "of Registry Values",
    "of Broadcast Frames",
    "of Service Discovery",
    "of Configuration Channels",
    "of Scheduled Tasks",
    "of Trust Anchors",
    "of Diagnostic Interfaces",
    "of Cached Credentials",
    "of Telemetry Streams",
];

const WEAKNESS_SUBJECTS: &[&str] = &[
    "Input Lengths",
    "Memory Regions",
    "File Paths",
    "Command Strings",
    "Session State",
    "Numeric Ranges",
    "Access Tokens",
    "Resource Handles",
    "Temporary Files",
    "Error Messages",
];

const WEAKNESS_MODES: &[&str] = &[
    "Improper Validation",
    "Improper Handling",
    "Missing Verification",
    "Incorrect Restriction",
    "Unchecked Use",
];

fn sentence(rng: &mut StdRng, mention: Option<&str>) -> String {
    let flaw = FLAWS.choose(rng).expect("non-empty pool");
    let component = COMPONENTS.choose(rng).expect("non-empty pool");
    let actor = ACTORS.choose(rng).expect("non-empty pool");
    let consequence = CONSEQUENCES.choose(rng).expect("non-empty pool");
    match mention {
        Some(product) => {
            format!("{flaw} in the {component} of {product} allows {actor} to {consequence}.")
        }
        None => {
            let (vendor, product) = FAKE_PRODUCTS.choose(rng).expect("non-empty pool");
            format!(
                "{flaw} in the {component} of {vendor} {product} allows {actor} to {consequence}."
            )
        }
    }
}

fn random_cvss(rng: &mut StdRng) -> CvssVector {
    let av = *[
        AttackVectorMetric::Network,
        AttackVectorMetric::Network,
        AttackVectorMetric::Network,
        AttackVectorMetric::Adjacent,
        AttackVectorMetric::Local,
        AttackVectorMetric::Local,
        AttackVectorMetric::Physical,
    ]
    .choose(rng)
    .expect("non-empty pool");
    let impacts = [Impact::None, Impact::Low, Impact::High];
    let pick_impact = |rng: &mut StdRng| *impacts.choose(rng).expect("non-empty pool");
    let mut c = pick_impact(rng);
    let i = pick_impact(rng);
    let a = pick_impact(rng);
    if c == Impact::None && i == Impact::None && a == Impact::None {
        c = Impact::High; // NVD does not publish no-impact CVEs.
    }
    CvssVector {
        av,
        ac: if rng.gen_bool(0.75) {
            AttackComplexity::Low
        } else {
            AttackComplexity::High
        },
        pr: *[
            PrivilegesRequired::None,
            PrivilegesRequired::None,
            PrivilegesRequired::Low,
            PrivilegesRequired::High,
        ]
        .choose(rng)
        .expect("non-empty pool"),
        ui: if rng.gen_bool(0.65) {
            UserInteraction::None
        } else {
            UserInteraction::Required
        },
        s: if rng.gen_bool(0.85) {
            Scope::Unchanged
        } else {
            Scope::Changed
        },
        c,
        i,
        a,
    }
}

/// Generates a corpus from a spec. Deterministic in the spec.
///
/// A thin wrapper over [`stream_into`] starting from an empty corpus —
/// use `stream_into` directly when growing an existing corpus (e.g. the
/// curated seed) to avoid materializing a second full corpus just to
/// merge it.
///
/// # Examples
///
/// ```
/// use cpssec_attackdb::synth::{generate, SynthSpec};
///
/// let spec = SynthSpec::paper2020(7, 0.02);
/// let corpus = generate(&spec);
/// assert_eq!(corpus, generate(&spec));
/// ```
#[must_use]
pub fn generate(spec: &SynthSpec) -> Corpus {
    let mut corpus = Corpus::new();
    stream_into(&mut corpus, spec).expect("generated ids are unique in an empty corpus");
    corpus
}

/// Streams generated records straight into an existing corpus, one record
/// at a time — bounded intermediate memory at any scale (no second corpus
/// or JSONL buffer is built to be merged). Byte-identical to
/// [`generate`] + [`Corpus::merge`]: record construction and the single
/// RNG's call order are exactly the same, only the destination differs.
///
/// # Errors
///
/// [`crate::AttackDbError`] if a generated id collides with a record
/// already in `corpus` (generated ids start at CWE-10000 / CAPEC-10000 /
/// CVE-\*-20000, clear of the curated seed corpus). On error the corpus
/// keeps the records added so far.
pub fn stream_into(corpus: &mut Corpus, spec: &SynthSpec) -> Result<(), crate::AttackDbError> {
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Weaknesses first so patterns and vulnerabilities can link to them.
    let mut next_cwe = 10_000u32;
    let mut all_cwes: Vec<CweId> = Vec::new();
    let add_weakness = |corpus: &mut Corpus,
                        rng: &mut StdRng,
                        all_cwes: &mut Vec<CweId>,
                        next_cwe: &mut u32,
                        mention: Option<&str>|
     -> Result<(), crate::AttackDbError> {
        let id = CweId::new(*next_cwe);
        *next_cwe += 1;
        let mode = WEAKNESS_MODES.choose(rng).expect("non-empty pool");
        let subject = WEAKNESS_SUBJECTS.choose(rng).expect("non-empty pool");
        let component = COMPONENTS.choose(rng).expect("non-empty pool");
        let mut w = Weakness::new(
            id,
            format!("{mode} of {subject} in {component}"),
            sentence(rng, None),
        );
        if let Some(m) = mention {
            w = w.with_platform(format!("{m} platforms"));
        }
        corpus.add_weakness(w)?;
        all_cwes.push(id);
        Ok(())
    };
    for _ in 0..spec.background_weaknesses {
        add_weakness(corpus, &mut rng, &mut all_cwes, &mut next_cwe, None)?;
    }
    for profile in &spec.profiles {
        for _ in 0..profile.weaknesses {
            add_weakness(
                corpus,
                &mut rng,
                &mut all_cwes,
                &mut next_cwe,
                Some(profile.platform()),
            )?;
        }
    }

    // Attack patterns.
    let mut next_capec = 10_000u32;
    let abstractions = [
        Abstraction::Meta,
        Abstraction::Standard,
        Abstraction::Detailed,
    ];
    let add_pattern = |corpus: &mut Corpus,
                       rng: &mut StdRng,
                       next_capec: &mut u32,
                       mention: Option<&str>|
     -> Result<(), crate::AttackDbError> {
        let id = CapecId::new(*next_capec);
        *next_capec += 1;
        let verb = PATTERN_VERBS.choose(rng).expect("non-empty pool");
        let object = PATTERN_OBJECTS.choose(rng).expect("non-empty pool");
        let description = match mention {
            Some(m) => format!(
                "An adversary targets services running on {m} platforms. {}",
                sentence(rng, None)
            ),
            None => sentence(rng, None),
        };
        let mut p = AttackPattern::new(
            id,
            format!("{verb} {object}"),
            description,
            *abstractions.choose(rng).expect("non-empty pool"),
        );
        for _ in 0..rng.gen_range(1..=3usize) {
            if let Some(cwe) = all_cwes.choose(rng) {
                p = p.with_weakness(*cwe);
            }
        }
        corpus.add_pattern(p)?;
        Ok(())
    };
    for _ in 0..spec.background_patterns {
        add_pattern(corpus, &mut rng, &mut next_capec, None)?;
    }
    for profile in &spec.profiles {
        for _ in 0..profile.patterns {
            add_pattern(corpus, &mut rng, &mut next_capec, Some(profile.platform()))?;
        }
    }

    // Vulnerabilities.
    let mut next_cve = 20_000u32;
    let classic_bias = spec.classic_weakness_bias.clamp(0.0, 1.0);
    let add_vuln = |corpus: &mut Corpus,
                    rng: &mut StdRng,
                    next_cve: &mut u32,
                    profile: Option<&ProductProfile>|
     -> Result<(), crate::AttackDbError> {
        let year = 2002 + (*next_cve % 19) as u16;
        let id = CveId::new(year, *next_cve);
        *next_cve += 1;
        let mention = profile.map(|p| p.mention.as_str());
        let mut v = Vulnerability::new(id, sentence(rng, mention)).with_cvss(random_cvss(rng));
        if rng.gen_bool(classic_bias) {
            let classic = CLASSIC_CWES.choose(rng).expect("non-empty list");
            v = v.with_weakness(CweId::new(*classic));
        } else if let Some(cwe) = all_cwes.choose(rng) {
            v = v.with_weakness(*cwe);
        }
        match profile {
            Some(p) => {
                v = v.with_affected(CpeName::new(p.cpe.0.clone(), p.cpe.1.clone()));
            }
            None => {
                let (vendor, product) = FAKE_PRODUCTS.choose(rng).expect("non-empty pool");
                v = v.with_affected(CpeName::new(*vendor, *product));
            }
        }
        corpus.add_vulnerability(v)?;
        Ok(())
    };
    for _ in 0..spec.background_vulnerabilities {
        add_vuln(corpus, &mut rng, &mut next_cve, None)?;
    }
    for profile in &spec.profiles {
        for _ in 0..profile.vulnerabilities {
            add_vuln(corpus, &mut rng, &mut next_cve, Some(profile))?;
        }
    }

    Ok(())
}

/// A fictional product line that exists in **no** other generation pool:
/// the token `quantumworks` never appears in seed or [`generate`] output,
/// so a query for it cleanly separates delta-applied records from the
/// base corpus (CI asserts exactly this after `POST /corpus/delta`).
pub const DELTA_MENTION: &str = "Quantumworks FlowNet gateway";

/// Generates a deterministic batch of *new* records for a `.cpsdelta`,
/// with ids far above anything [`generate`] or the curated seed produce
/// (CWE/CAPEC from `500_000 + serial·10_000`, CVEs in year 2030 from
/// `serial·1_000_000`) so consecutive serials chain append-only: every id
/// in batch `serial + 1` exceeds every id in batch `serial`.
///
/// The composition is vulnerability-heavy like a real feed increment
/// (1/20 patterns, 1/10 weaknesses, the rest vulnerabilities), and every
/// record mentions the [`DELTA_MENTION`] product so its arrival is
/// observable through a search query.
///
/// # Panics
///
/// Panics if `records` exceeds the per-serial id range (10 000).
#[must_use]
pub fn delta_batch(seed: u64, records: usize, serial: u32) -> Corpus {
    assert!(
        records <= 10_000,
        "delta batch exceeds the per-serial id range"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(serial) << 32));
    let mut batch = Corpus::new();
    let patterns = records / 20;
    let weaknesses = records / 10;
    let vulnerabilities = records - patterns - weaknesses;
    let base = 500_000 + serial * 10_000;
    for i in 0..weaknesses as u32 {
        let mode = WEAKNESS_MODES.choose(&mut rng).expect("non-empty pool");
        let subject = WEAKNESS_SUBJECTS.choose(&mut rng).expect("non-empty pool");
        let w = Weakness::new(
            CweId::new(base + i),
            format!("{mode} of {subject} in {DELTA_MENTION} firmware"),
            sentence(&mut rng, Some(DELTA_MENTION)),
        )
        .with_platform(format!("{DELTA_MENTION} platforms"));
        batch.add_weakness(w).expect("delta ids unique");
    }
    for i in 0..patterns as u32 {
        let verb = PATTERN_VERBS.choose(&mut rng).expect("non-empty pool");
        let object = PATTERN_OBJECTS.choose(&mut rng).expect("non-empty pool");
        let p = AttackPattern::new(
            CapecId::new(base + i),
            format!("{verb} {object}"),
            format!(
                "An adversary targets services running on {DELTA_MENTION} platforms. {}",
                sentence(&mut rng, None)
            ),
            Abstraction::Standard,
        );
        batch.add_pattern(p).expect("delta ids unique");
    }
    for i in 0..vulnerabilities as u32 {
        let v = Vulnerability::new(
            CveId::new(2030, serial * 1_000_000 + i),
            sentence(&mut rng, Some(DELTA_MENTION)),
        )
        .with_cvss(random_cvss(&mut rng))
        .with_affected(CpeName::new("quantumworks", "flownet gateway"));
        batch.add_vulnerability(v).expect("delta ids unique");
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SynthSpec {
        let mut spec = SynthSpec::new(42);
        spec.background_patterns = 20;
        spec.background_weaknesses = 30;
        spec.background_vulnerabilities = 50;
        spec.profiles = vec![
            ProductProfile::new("widget", "Acme Widget OS", "acme", "widget os")
                .with_counts(10, 3, 2),
        ];
        spec
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(&tiny()), generate(&tiny()));
    }

    #[test]
    fn different_seeds_differ() {
        let mut other = tiny();
        other.seed = 43;
        assert_ne!(generate(&tiny()), generate(&other));
    }

    #[test]
    fn counts_match_spec() {
        let c = generate(&tiny());
        let s = c.stats();
        assert_eq!(s.patterns, 23);
        assert_eq!(s.weaknesses, 32);
        assert_eq!(s.vulnerabilities, 60);
    }

    #[test]
    fn profile_records_mention_the_product() {
        let c = generate(&tiny());
        let mentioning = c
            .vulnerabilities()
            .filter(|v| v.description().contains("Acme Widget OS"))
            .count();
        assert_eq!(mentioning, 10);
        let platform_patterns = c
            .patterns()
            .filter(|p| p.description().contains("Acme Widget OS"))
            .count();
        assert_eq!(platform_patterns, 3);
        let platform_weaknesses = c
            .weaknesses()
            .filter(|w| w.platforms().iter().any(|p| p.contains("Acme Widget OS")))
            .count();
        assert_eq!(platform_weaknesses, 2);
    }

    #[test]
    fn background_records_do_not_mention_profiles() {
        let c = generate(&tiny());
        let background_mentioning = c
            .vulnerabilities()
            .filter(|v| !v.description().contains("Acme Widget OS"))
            .filter(|v| v.affected().iter().any(|p| p.vendor() == "acme"))
            .count();
        assert_eq!(background_mentioning, 0);
    }

    #[test]
    fn all_generated_vulnerabilities_are_scored_and_linked() {
        let c = generate(&tiny());
        assert!(c.vulnerabilities().all(|v| v.cvss().is_some()));
        assert!(c.vulnerabilities().all(|v| !v.weaknesses().is_empty()));
        assert!(c.dangling_references().is_empty());
    }

    #[test]
    fn paper2020_scales_vulnerabilities_only() {
        let full = SynthSpec::paper2020(1, 1.0);
        let tenth = SynthSpec::paper2020(1, 0.1);
        let find = |spec: &SynthSpec, key: &str| {
            spec.profiles.iter().find(|p| p.key == key).unwrap().clone()
        };
        assert_eq!(
            find(&full, "windows-7").patterns,
            find(&tenth, "windows-7").patterns
        );
        assert!(
            find(&full, "windows-7").vulnerabilities > find(&tenth, "windows-7").vulnerabilities
        );
        // Niche products stay tiny at any scale.
        assert_eq!(find(&full, "labview").vulnerabilities, 3);
        assert_eq!(find(&full, "crio").vulnerabilities, 4);
    }

    #[test]
    fn paper2020_merges_cleanly_with_seed() {
        let mut corpus = crate::seed::seed_corpus();
        corpus
            .merge(generate(&SynthSpec::paper2020(7, 0.01)))
            .unwrap();
        assert!(corpus.stats().vulnerabilities > 20);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_is_rejected() {
        let _ = SynthSpec::paper2020(1, 0.0);
    }

    #[test]
    fn stream_into_equals_generate_plus_merge() {
        let spec = SynthSpec::paper2020(7, 0.02);
        let mut merged = crate::seed::seed_corpus();
        merged.merge(generate(&spec)).unwrap();
        let mut streamed = crate::seed::seed_corpus();
        stream_into(&mut streamed, &spec).unwrap();
        assert_eq!(merged, streamed);
    }

    #[test]
    fn stream_into_rejects_id_collisions() {
        let mut corpus = generate(&tiny());
        assert!(stream_into(&mut corpus, &tiny()).is_err());
    }

    #[test]
    fn legacy_scale_counts_are_pinned() {
        // Regression pin: the scale → record-count mapping at the two
        // legacy CI scales must never drift (downstream campaign hashes
        // and Table 1 shape tests depend on it).
        let s = generate(&SynthSpec::paper2020(7, 0.02)).stats();
        assert_eq!((s.patterns, s.weaknesses), (597, 849));
        assert_eq!(s.vulnerabilities, 639);
        let s = generate(&SynthSpec::paper2020(11, 0.05)).stats();
        assert_eq!((s.patterns, s.weaknesses), (597, 849));
        assert_eq!(s.vulnerabilities, 1601);
    }

    #[test]
    fn scale_maps_linearly_to_corpus_size() {
        // ~32k records per unit of scale: scale 3.0 ≈ 100k records is the
        // CI snapshot-scale fixture; ~31 ≈ 1M is the E17 upper point.
        let spec = SynthSpec::paper2020(7, 3.0);
        let expected: usize = spec.background_vulnerabilities
            + spec
                .profiles
                .iter()
                .map(|p| p.vulnerabilities)
                .sum::<usize>();
        assert!((96_000..=100_000).contains(&expected), "{expected}");
    }

    #[test]
    fn delta_batch_is_deterministic_and_append_only_across_serials() {
        let a = delta_batch(9, 200, 1);
        assert_eq!(a, delta_batch(9, 200, 1));
        assert_ne!(a, delta_batch(10, 200, 1));
        let s = a.stats();
        assert_eq!(s.patterns + s.weaknesses + s.vulnerabilities, 200);
        assert!(s.vulnerabilities > s.weaknesses);
        // Serial 2's smallest ids exceed serial 1's largest.
        let b = delta_batch(9, 200, 2);
        let max_cve_a = a.vulnerabilities().last().unwrap().id();
        let min_cve_b = b.vulnerabilities().next().unwrap().id();
        assert!(min_cve_b > max_cve_a);
        let max_cwe_a = a.weaknesses().last().unwrap().id();
        let min_cwe_b = b.weaknesses().next().unwrap().id();
        assert!(min_cwe_b > max_cwe_a);
    }

    #[test]
    fn delta_batch_mentions_are_absent_from_generated_corpora() {
        // `quantumworks` must be distinctive: no seed or synth record may
        // contain it, so a post-delta query separates old from new.
        let batch = delta_batch(9, 50, 1);
        assert!(batch
            .vulnerabilities()
            .all(|v| v.description().contains("Quantumworks")));
        let mut base = crate::seed::seed_corpus();
        base.merge(generate(&SynthSpec::paper2020(7, 0.02)))
            .unwrap();
        assert!(!base
            .vulnerabilities()
            .any(|v| v.description().to_lowercase().contains("quantumworks")));
        assert!(!base
            .patterns()
            .any(|p| p.description().to_lowercase().contains("quantumworks")));
        // And batch ids clear the merged corpus's id ceiling.
        let floor = base.last_vulnerability_id().unwrap();
        assert!(batch.vulnerabilities().next().unwrap().id() > floor);
    }
}
