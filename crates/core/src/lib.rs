//! Facade crate: the end-to-end model-based security analysis pipeline.
//!
//! Re-exports the whole `cpssec` workspace under topical modules and wires
//! the three capabilities of *"Fundamental Challenges of Cyber-Physical
//! Systems Security Modeling"* (DSN 2020) into one [`Pipeline`]:
//!
//! 1. **export** — a system model in the general architectural form
//!    (build one with [`model::SystemModelBuilder`], or import GraphML);
//! 2. **associate** — attack vector data matched to the model
//!    ([`search::SearchEngine`] over an [`attackdb::Corpus`]);
//! 3. **analyze & decide** — the dashboard operations
//!    ([`analysis::Dashboard`]), posture comparison, attack surface,
//!    filtering, and — beyond the paper's prototype — simulated physical
//!    consequences ([`scada`], [`analysis::consequence`]).
//!
//! # Examples
//!
//! The complete §3 demonstration in a few lines:
//!
//! ```
//! use cpssec_core::prelude::*;
//!
//! // Attack vector data (seed corpus; merge a synthetic corpus for scale).
//! let corpus = cpssec_core::attackdb::seed::seed_corpus();
//! // The particle separation centrifuge model of Fig 1.
//! let model = cpssec_core::scada::model::scada_model();
//! // The dashboard merges the two.
//! let mut dashboard = Dashboard::new(corpus, model);
//! let table = dashboard.table_text();
//! assert!(table.contains("Cisco ASA"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The general architectural model (re-export of [`cpssec_model`]).
pub mod model {
    pub use cpssec_model::*;
}

/// Attack vector corpora (re-export of [`cpssec_attackdb`]).
pub mod attackdb {
    pub use cpssec_attackdb::*;
}

/// The matching engine (re-export of [`cpssec_search`]).
pub mod search {
    pub use cpssec_search::*;
}

/// The simulation kernel (re-export of [`cpssec_sim`]).
pub mod sim {
    pub use cpssec_sim::*;
}

/// The centrifuge demonstration (re-export of [`cpssec_scada`]).
pub mod scada {
    pub use cpssec_scada::*;
}

/// The exploit-chain campaign engine (re-export of [`cpssec_campaign`]).
pub mod campaign {
    pub use cpssec_campaign::*;
}

/// The dashboard engine (re-export of [`cpssec_analysis`]).
pub mod analysis {
    pub use cpssec_analysis::*;
}

/// The most commonly used items in one import.
pub mod prelude {
    pub use cpssec_analysis::{AssociationMap, Dashboard, SystemPosture};
    pub use cpssec_attackdb::{Corpus, Severity};
    pub use cpssec_model::{
        Attribute, AttributeKind, ChannelKind, ComponentKind, Criticality, Fidelity, SystemModel,
        SystemModelBuilder,
    };
    pub use cpssec_scada::{ProductQuality, ScadaConfig, ScadaHarness};
    pub use cpssec_search::{Filter, FilterPipeline, MatchSet, ScoringModel, SearchEngine};
}

use std::sync::OnceLock;

use cpssec_analysis::{AssociationMap, Dashboard};
use cpssec_attackdb::Corpus;
use cpssec_model::{Fidelity, SystemModel};
use cpssec_search::{FilterPipeline, MatchConfig, ScoringModel, SearchEngine};

/// A one-call pipeline: corpus + model → association → dashboard.
///
/// For fine-grained control use the constituent crates directly; the
/// pipeline exists so the common path is one expression. The search engine
/// is built lazily on first use and cached, so repeated [`associate`]
/// (Pipeline::associate) calls — or a long-lived service holding one
/// pipeline per corpus — pay the indexing cost once.
#[derive(Debug)]
pub struct Pipeline {
    corpus: Corpus,
    model: SystemModel,
    fidelity: Fidelity,
    filters: FilterPipeline,
    scoring: ScoringModel,
    engine: OnceLock<SearchEngine>,
}

impl Pipeline {
    /// Starts a pipeline over a corpus and a model.
    #[must_use]
    pub fn new(corpus: Corpus, model: SystemModel) -> Self {
        Pipeline {
            corpus,
            model,
            fidelity: Fidelity::Implementation,
            filters: FilterPipeline::new(),
            scoring: ScoringModel::TfIdf,
            engine: OnceLock::new(),
        }
    }

    /// Sets the fidelity level (builder style).
    #[must_use]
    pub fn at_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Sets the filter pipeline (builder style).
    #[must_use]
    pub fn with_filters(mut self, filters: FilterPipeline) -> Self {
        self.filters = filters;
        self
    }

    /// Sets the scoring model (builder style). Discards any cached engine.
    #[must_use]
    pub fn with_scoring(mut self, scoring: ScoringModel) -> Self {
        self.scoring = scoring;
        self.engine = OnceLock::new();
        self
    }

    /// The cached search engine over this pipeline's corpus, built on first
    /// access.
    pub fn engine(&self) -> &SearchEngine {
        self.engine.get_or_init(|| {
            SearchEngine::with_config(
                &self.corpus,
                MatchConfig {
                    scoring: self.scoring,
                    ..MatchConfig::default()
                },
            )
        })
    }

    /// Runs capability 2: the association of attack vectors to the model.
    #[must_use]
    pub fn associate(&self) -> AssociationMap {
        AssociationMap::build(
            &self.model,
            self.engine(),
            &self.corpus,
            self.fidelity,
            &self.filters,
        )
    }

    /// Opens capability 3: an interactive dashboard session (consumes the
    /// pipeline; the dashboard owns corpus and model).
    #[must_use]
    pub fn into_dashboard(self) -> Dashboard {
        let mut dashboard = Dashboard::new(self.corpus, self.model);
        dashboard.set_fidelity(self.fidelity);
        dashboard.set_filters(self.filters);
        dashboard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::seed_corpus;
    use cpssec_scada::model::scada_model;

    #[test]
    fn pipeline_association_matches_dashboard_view() {
        let pipeline = Pipeline::new(seed_corpus(), scada_model());
        let map = pipeline.associate();
        let mut dashboard = pipeline.into_dashboard();
        assert_eq!(dashboard.association(), &map);
    }

    #[test]
    fn fidelity_knob_propagates() {
        let concrete = Pipeline::new(seed_corpus(), scada_model()).associate();
        let abstract_ = Pipeline::new(seed_corpus(), scada_model())
            .at_fidelity(Fidelity::Conceptual)
            .associate();
        assert!(abstract_.total_vectors() < concrete.total_vectors());
    }

    #[test]
    fn engine_is_cached_across_associate_calls() {
        let pipeline = Pipeline::new(seed_corpus(), scada_model());
        let first = pipeline.associate();
        let queries_after_first = pipeline.engine().queries_run();
        let second = pipeline.associate();
        assert_eq!(first, second);
        assert!(std::ptr::eq(pipeline.engine(), pipeline.engine()));
        // The second associate ran its queries on the same cached engine.
        assert_eq!(pipeline.engine().queries_run(), 2 * queries_after_first);
    }

    #[test]
    fn scoring_knob_changes_scores_not_hit_sets() {
        let tfidf = Pipeline::new(seed_corpus(), scada_model()).associate();
        let bm25 = Pipeline::new(seed_corpus(), scada_model())
            .with_scoring(ScoringModel::Bm25)
            .associate();
        assert_eq!(tfidf.total_vectors(), bm25.total_vectors());
        assert_ne!(tfidf, bm25, "scores should differ between models");
    }

    #[test]
    fn filters_propagate() {
        use cpssec_search::Filter;
        let filtered = Pipeline::new(seed_corpus(), scada_model())
            .with_filters(FilterPipeline::new().then(Filter::TopKPerFamily(1)))
            .associate();
        let unfiltered = Pipeline::new(seed_corpus(), scada_model()).associate();
        assert!(filtered.total_vectors() < unfiltered.total_vectors());
    }
}
