//! E3 — Fidelity sensitivity: "the result space … is highly sensitive to
//! the fidelity of the model" (§3).
//!
//! Prints the result-space size and composition at each fidelity level,
//! then times association at each level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cpssec_analysis::AssociationMap;
use cpssec_model::Fidelity;
use cpssec_scada::model::scada_model;
use cpssec_search::FilterPipeline;

fn bench_fidelity(c: &mut Criterion) {
    let corpus = cpssec_bench::corpus();
    let engine = cpssec_bench::engine(&corpus);
    let model = scada_model();
    let filters = FilterPipeline::new();

    println!("\nFidelity sweep — result-space size and composition:");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "Fidelity", "patterns", "weaknesses", "vulns", "total"
    );
    for level in Fidelity::ALL {
        let map = AssociationMap::build(&model, &engine, &corpus, level, &filters);
        let (mut p, mut w, mut v) = (0, 0, 0);
        for (_, set) in map.iter() {
            let (sp, sw, sv) = set.counts();
            p += sp;
            w += sw;
            v += sv;
        }
        println!(
            "{:<16} {p:>10} {w:>10} {v:>10} {:>10}",
            level.to_string(),
            p + w + v
        );
    }
    println!(
        "expected shape: totals grow with fidelity; the vulnerability share grows fastest\n\
         (abstract models relate to patterns/weaknesses, concrete models to vulnerabilities)."
    );

    let mut group = c.benchmark_group("fidelity_sweep");
    group.sample_size(20);
    for level in Fidelity::ALL {
        group.bench_with_input(
            BenchmarkId::new("associate", level.as_str()),
            &level,
            |b, &level| {
                b.iter(|| {
                    black_box(AssociationMap::build(
                        &model, &engine, &corpus, level, &filters,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fidelity);
criterion_main!(benches);
