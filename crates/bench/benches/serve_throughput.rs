//! E11 — Analysis service throughput and cache behavior.
//!
//! Starts the concurrent server in-process, then measures (a) cold
//! association requests — every request carries a distinct filter spec so
//! each misses the content-addressed cache and runs the full pipeline —
//! against cache-hit requests repeating one spec, and (b) sustained
//! keep-alive throughput with the built-in load generator.
//!
//! `CPSSEC_BENCH_FAST=1` (CI test mode) shrinks the request counts so the
//! bench completes in seconds while still exercising every path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Instant;

use cpssec_server::load::{self, read_response, LoadConfig};
use cpssec_server::{AppState, Server};

fn fast_mode() -> bool {
    std::env::var("CPSSEC_BENCH_FAST").is_ok_and(|v| v == "1")
}

struct Running {
    addr: std::net::SocketAddr,
    flag: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Running {
    fn start(workers: usize) -> Running {
        let state = AppState::new(cpssec_bench::corpus());
        let server = Server::bind("127.0.0.1:0", workers, state).expect("bind");
        let addr = server.local_addr().expect("addr");
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        Running {
            addr,
            flag,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client {
        let stream = TcpStream::connect(self.addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client {
            writer: stream,
            reader,
        }
    }
}

/// One keep-alive connection: latency measurements exclude TCP setup.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn get(&mut self, target: &str) -> Vec<u8> {
        self.writer
            .write_all(format!("GET {target} HTTP/1.1\r\n\r\n").as_bytes())
            .expect("write");
        let response = read_response(&mut self.reader).expect("response");
        assert_eq!(response.status, 200, "GET {target}");
        response.body
    }
}

impl Drop for Running {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Mean per-request latency in microseconds over `targets`, on one
/// keep-alive connection.
fn mean_latency_us(client: &mut Client, targets: &[String]) -> f64 {
    let started = Instant::now();
    for target in targets {
        black_box(client.get(target));
    }
    started.elapsed().as_micros() as f64 / targets.len() as f64
}

fn print_cold_vs_hit(server: &Running, rounds: usize) -> (f64, f64) {
    // Cold: distinct minScore per request → distinct cache key → full
    // pipeline run. Warm: one spec repeated → served from the cache.
    let cold_targets: Vec<String> = (0..rounds)
        .map(|i| format!("/models/scada/associate?minScore={}.{i}", i + 10))
        .collect();
    let hit_targets: Vec<String> = (0..rounds)
        .map(|_| "/models/scada/associate".to_owned())
        .collect();
    let mut client = server.client();
    client.get("/models/scada/associate"); // prime the warm entry
    let cold = mean_latency_us(&mut client, &cold_targets);
    let hit = mean_latency_us(&mut client, &hit_targets);
    println!("\nE11 — result cache, scale {}:", cpssec_bench::scale());
    println!("  cold (distinct spec): {cold:>10.1} us/request");
    println!("  cache hit           : {hit:>10.1} us/request");
    println!("  speedup             : {:>10.1}x", cold / hit.max(0.1));
    (cold, hit)
}

fn bench_serve(c: &mut Criterion) {
    let fast = fast_mode();
    let server = Running::start(4);
    let (cold, hit) = print_cold_vs_hit(&server, if fast { 8 } else { 32 });
    assert!(
        cold > hit,
        "a cache hit must beat recomputation (cold {cold:.1} us vs hit {hit:.1} us)"
    );

    let requests = if fast { 16 } else { 100 };
    let report = load::run(&LoadConfig {
        addr: server.addr.to_string(),
        clients: 8,
        requests,
    });
    assert_eq!(report.errors, 0, "load errors: {}", report.summary());
    println!(
        "  8-client mixed load : {:>10.0} req/s ({})",
        report.throughput(),
        report.summary()
    );

    let mut client = server.client();
    let mut group = c.benchmark_group("serve");
    if fast {
        group.sample_size(2);
    }
    group.bench_function("associate_cache_hit", |b| {
        b.iter(|| black_box(client.get("/models/scada/associate")));
    });
    group.bench_function("healthz", |b| {
        b.iter(|| black_box(client.get("/healthz")));
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
