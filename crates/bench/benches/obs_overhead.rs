//! E13 — observability overhead: the instrumented whole-model match path
//! with the recorder disabled, with span aggregation on, and with the
//! trace ring on, plus the raw per-span-site cost in each mode.
//!
//! The pipeline is permanently instrumented (`span!` sites in tokenize,
//! score, filter, chain-build, render); the claim under test is that a
//! *disabled* recorder — one relaxed atomic load per site — keeps the
//! match path within 2% of its uninstrumented baseline (EXPERIMENTS.md
//! records the before/after pair). `CPSSEC_BENCH_FAST=1` shrinks rounds;
//! `CPSSEC_SCALE` picks the corpus scale (default 0.05, the scale the
//! baseline was measured at).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

use cpssec_model::Fidelity;
use cpssec_scada::model::scada_model;
use cpssec_search::SearchEngine;

fn fast_mode() -> bool {
    std::env::var("CPSSEC_BENCH_FAST").is_ok_and(|v| v == "1")
}

fn bench_scale() -> f64 {
    std::env::var("CPSSEC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

fn mean_us(rounds: usize, mut work: impl FnMut()) -> f64 {
    let started = Instant::now();
    for _ in 0..rounds {
        work();
    }
    started.elapsed().as_secs_f64() * 1e6 / rounds.max(1) as f64
}

/// Mean cost of one `span!` open+drop, in nanoseconds, under the
/// recorder's current mode.
fn span_site_ns(iterations: u64) -> f64 {
    let started = Instant::now();
    for _ in 0..iterations {
        drop(black_box(cpssec_obs::span!("bench-probe")));
    }
    started.elapsed().as_secs_f64() * 1e9 / iterations.max(1) as f64
}

fn bench_obs_overhead(c: &mut Criterion) {
    let fast = fast_mode();
    let scale = bench_scale();
    let corpus = cpssec_bench::corpus_at(scale);
    let records = corpus.stats().total() as u64;
    let engine = SearchEngine::build(&corpus);
    let model = scada_model();
    let rec = cpssec_obs::recorder();

    let rounds = if fast { 8 } else { 20 };
    let span_iters: u64 = if fast { 200_000 } else { 2_000_000 };
    let work = || {
        black_box(
            engine
                .match_model(&model, Fidelity::Implementation)
                .iter()
                .map(|(_, set)| set.total())
                .sum::<usize>(),
        );
    };

    // Ordering matters: the global recorder's modes only ratchet within
    // a mode block, so measure disabled → spans → trace. Each mode warms
    // up first — the first enabled rounds pay one-off costs (stage
    // interning, histogram pages, the trace ring allocation) — and the
    // headline is the best of several chunk means, which shrugs off
    // scheduler interference on single-core CI boxes where a plain mean
    // can swing ±40%.
    let best_of = |rounds: usize, work: &mut dyn FnMut()| {
        for _ in 0..rounds.div_ceil(2) {
            work();
        }
        (0..5)
            .map(|_| mean_us(rounds, &mut *work))
            .fold(f64::INFINITY, f64::min)
    };
    rec.disable();
    let disabled_us = best_of(rounds, &mut { work });
    let disabled_span_ns = span_site_ns(span_iters);

    rec.enable_spans();
    let spans_us = best_of(rounds, &mut { work });
    let enabled_span_ns = span_site_ns(span_iters);

    rec.enable_trace();
    let trace_us = best_of(rounds, &mut { work });
    let trace_span_ns = span_site_ns(span_iters);
    rec.disable();

    println!("\nE13 — observability overhead at scale {scale} ({records} records):");
    println!("  match_model, recorder disabled : {disabled_us:>10.0} us");
    println!(
        "  match_model, spans enabled     : {spans_us:>10.0} us  ({:+.1}% vs disabled)",
        (spans_us / disabled_us.max(1.0) - 1.0) * 100.0
    );
    println!(
        "  match_model, trace enabled     : {trace_us:>10.0} us  ({:+.1}% vs disabled)",
        (trace_us / disabled_us.max(1.0) - 1.0) * 100.0
    );
    println!("  span site, disabled            : {disabled_span_ns:>10.1} ns");
    println!("  span site, spans enabled       : {enabled_span_ns:>10.1} ns");
    println!("  span site, trace enabled       : {trace_span_ns:>10.1} ns");

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(if fast { 2 } else { 10 });
    group.throughput(Throughput::Elements(records));
    group.bench_with_input(
        BenchmarkId::new("match_model_disabled", format!("{records}rec")),
        &(),
        |b, ()| b.iter(work),
    );
    rec.enable_spans();
    group.bench_with_input(
        BenchmarkId::new("match_model_spans", format!("{records}rec")),
        &(),
        |b, ()| b.iter(work),
    );
    rec.enable_trace();
    group.bench_with_input(
        BenchmarkId::new("match_model_trace", format!("{records}rec")),
        &(),
        |b, ()| b.iter(work),
    );
    rec.disable();
    group.finish();

    // A disabled span site must stay in the tens-of-nanoseconds range —
    // one relaxed load, no clock read, no allocation.
    assert!(
        disabled_span_ns < 200.0,
        "disabled span site costs {disabled_span_ns:.1} ns; expected an atomic load"
    );
    // Even fully enabled, spans must not distort the match path. The 2%
    // disabled-overhead claim is checked against the recorded baseline in
    // EXPERIMENTS.md; here we bound the *enabled* modes, which dominate
    // it, allowing slack for timer noise on tiny corpora.
    assert!(
        spans_us <= disabled_us * 1.25 + 50.0 || records < 1_000,
        "span aggregation overhead too high: {spans_us:.0} us vs {disabled_us:.0} us disabled"
    );
    assert!(
        trace_us <= disabled_us * 1.35 + 50.0 || records < 1_000,
        "trace overhead too high: {trace_us:.0} us vs {disabled_us:.0} us disabled"
    );
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
