//! E12 — Binary snapshot cold start: JSONL parse + index build versus one
//! `.cpsnap` decode, plus the sharded index build and the adaptive
//! parallel fan-out ablation (E12b).
//!
//! The snapshot stores the frozen indices with precomputed weights as raw
//! `f64` bits, so the decoded engine answers queries immediately and
//! bit-identically. `CPSSEC_BENCH_FAST=1` (CI test mode) shrinks sample
//! counts; `CPSSEC_SCALE` picks the corpus scale (default 0.3 here — the
//! paper-shaped 11k-record corpus the acceptance target is stated at).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

use cpssec_model::Fidelity;
use cpssec_scada::model::scada_model;
use cpssec_search::{snapshot, InvertedIndex, SearchEngine};

fn fast_mode() -> bool {
    std::env::var("CPSSEC_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// This bench defaults to the 11k-record scale instead of the harness-wide
/// 0.05 so the headline number matches the acceptance criterion.
fn bench_scale() -> f64 {
    std::env::var("CPSSEC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3)
}

fn mean_us(rounds: usize, mut work: impl FnMut()) -> f64 {
    let started = Instant::now();
    for _ in 0..rounds {
        work();
    }
    started.elapsed().as_secs_f64() * 1e6 / rounds.max(1) as f64
}

fn bench_snapshot_load(c: &mut Criterion) {
    let fast = fast_mode();
    let scale = bench_scale();
    let corpus = cpssec_bench::corpus_at(scale);
    let records = corpus.stats().total() as u64;
    let jsonl = cpssec_attackdb::jsonl::to_jsonl(&corpus);
    let engine = SearchEngine::build(&corpus);
    let snap = snapshot::encode(&corpus, &engine);

    // E12 headline: cold start, parse+build vs decode.
    let rounds = if fast { 2 } else { 5 };
    let cold_us = mean_us(rounds, || {
        let parsed = cpssec_attackdb::jsonl::from_jsonl(&jsonl).expect("parse");
        black_box(SearchEngine::build(&parsed));
    });
    let thaw_us = mean_us(rounds, || {
        black_box(snapshot::decode(&snap).expect("decode"));
    });
    println!("\nE12 — cold start at scale {scale} ({records} records):");
    println!(
        "  jsonl parse + build : {cold_us:>10.0} us  ({} JSONL bytes)",
        jsonl.len()
    );
    println!(
        "  snapshot decode     : {thaw_us:>10.0} us  ({} snapshot bytes)",
        snap.len()
    );
    println!(
        "  speedup             : {:>10.1}x",
        cold_us / thaw_us.max(1.0)
    );

    // Sharded build: same documents, explicit shard counts. On a single
    // hardware thread the sharded path pays only the merge; with real
    // cores it splits tokenization+interning across workers.
    let texts: Vec<&str> = corpus.vulnerabilities().map(|v| v.description()).collect();
    println!("  sharded build of {} docs:", texts.len());
    for shards in [1usize, 2, 4, 8] {
        let us = mean_us(rounds, || {
            black_box(InvertedIndex::from_documents_sharded(&texts, shards));
        });
        println!("    shards={shards:<2} {us:>10.0} us");
    }

    // E12b — adaptive fan-out ablation: whole-model association below and
    // above the sequential-fallback threshold (32 items).
    let model = scada_model();
    let seq_us = mean_us(rounds * 4, || {
        black_box(engine.match_model(&model, Fidelity::Implementation));
    });
    let par_us = mean_us(rounds * 4, || {
        black_box(engine.par_match_model(&model, Fidelity::Implementation));
    });
    println!(
        "E12b — fan-out on {} components (threshold 32):",
        model.component_count()
    );
    println!("  sequential          : {seq_us:>10.0} us");
    println!("  par_match_model     : {par_us:>10.0} us (adaptive: sequential below threshold)");

    let mut group = c.benchmark_group("snapshot_load");
    group.sample_size(if fast { 2 } else { 10 });
    group.throughput(Throughput::Elements(records));
    group.bench_with_input(
        BenchmarkId::new("parse_build", format!("{records}rec")),
        &jsonl,
        |b, jsonl| {
            b.iter(|| {
                let parsed = cpssec_attackdb::jsonl::from_jsonl(jsonl).expect("parse");
                black_box(SearchEngine::build(&parsed))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("snapshot_decode", format!("{records}rec")),
        &snap,
        |b, snap| b.iter(|| black_box(snapshot::decode(snap).expect("decode"))),
    );
    group.bench_with_input(
        BenchmarkId::new("snapshot_encode", format!("{records}rec")),
        &corpus,
        |b, corpus| b.iter(|| black_box(snapshot::encode(corpus, &engine))),
    );
    group.finish();

    assert!(
        cold_us / thaw_us.max(1.0) >= 10.0 || records < 5_000,
        "snapshot decode must be >=10x faster than parse+build at the 11k scale \
         (cold {cold_us:.0} us vs thaw {thaw_us:.0} us)"
    );
}

criterion_group!(benches, bench_snapshot_load);
criterion_main!(benches);
