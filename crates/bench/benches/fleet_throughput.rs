//! E15 — Fleet engine throughput and thread scaling.
//!
//! Runs the same Monte-Carlo campaign at 1 worker thread and at one
//! thread per core, asserting (a) the aggregate hash is identical — the
//! thread count must never change the statistics — and (b) on a
//! multi-core machine, scenarios/sec actually scales up with the extra
//! workers. Then times a single standalone scenario replay.
//!
//! `CPSSEC_BENCH_FAST=1` (CI test mode) shrinks the campaign so the
//! bench completes in seconds while still exercising both assertions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use cpssec_analysis::aggregate_hash;
use cpssec_scada::{run_campaign, run_scenario, CampaignSpec};

fn fast_mode() -> bool {
    std::env::var("CPSSEC_BENCH_FAST").is_ok_and(|v| v == "1")
}

fn bench_fleet(c: &mut Criterion) {
    let fast = fast_mode();
    let scenarios: u64 = if fast { 24 } else { 240 };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut spec = CampaignSpec::new(scenarios, 0xF1EE7);
    spec.max_ticks = 3000;

    let run_at = |threads: usize| {
        let spec = CampaignSpec {
            threads,
            ..spec.clone()
        };
        let started = Instant::now();
        let records = run_campaign(&spec);
        let elapsed = started.elapsed().as_secs_f64();
        (
            aggregate_hash(&records),
            scenarios as f64 / elapsed.max(1e-9),
        )
    };
    let (hash_one, rate_one) = run_at(1);
    let (hash_many, rate_many) = run_at(cores);

    println!(
        "\nE15 — fleet throughput ({scenarios} scenarios x {} ticks):",
        spec.max_ticks
    );
    println!("  1 thread       : {rate_one:>8.1} scenarios/s");
    println!("  {cores} thread(s)    : {rate_many:>8.1} scenarios/s");
    println!("  aggregate hash : {hash_one:016x}");
    assert_eq!(
        hash_one, hash_many,
        "thread count must never change the campaign statistics"
    );
    // The scaling assertion needs real parallel hardware; a 1-core
    // runner can only verify determinism.
    if cores >= 2 {
        assert!(
            rate_many > rate_one * 1.15,
            "fleet must scale with cores: {rate_one:.1}/s at 1 thread vs {rate_many:.1}/s at {cores}"
        );
    }

    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    group.bench_function("scenario_replay", |b| {
        let mut index = 0;
        b.iter(|| {
            index = (index + 1) % scenarios;
            black_box(run_scenario(&spec, index))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
