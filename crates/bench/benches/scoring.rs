//! Ablation — scoring model and query expansion.
//!
//! The paper's prototype uses plain keyword matching and notes the result
//! space is "very sensitive … depending on minor changes in attribute
//! descriptions". This ablation compares TF-IDF vs BM25 ranking and
//! synonym expansion on/off: hit *counts* are identical by construction
//! (criteria are model-independent and expansion only re-scores), so the
//! interesting outputs are the rank agreement and the timing cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cpssec_search::{MatchConfig, ScoringModel, SearchEngine};

const QUERIES: [&str; 4] = [
    "Windows 7",
    "NI RT Linux OS",
    "Cisco ASA firewall",
    "operating system command injection on the controller platform",
];

fn rank_overlap(a: &[cpssec_attackdb::CveId], b: &[cpssec_attackdb::CveId], k: usize) -> f64 {
    let top_a: Vec<_> = a.iter().take(k).collect();
    let top_b: Vec<_> = b.iter().take(k).collect();
    if top_a.is_empty() {
        return 1.0;
    }
    let shared = top_a.iter().filter(|id| top_b.contains(id)).count();
    shared as f64 / top_a.len() as f64
}

fn bench_scoring(c: &mut Criterion) {
    let corpus = cpssec_bench::corpus();
    let tfidf = SearchEngine::build(&corpus);
    let bm25 = SearchEngine::with_config(
        &corpus,
        MatchConfig {
            scoring: ScoringModel::Bm25,
            ..MatchConfig::default()
        },
    );
    let no_expand = SearchEngine::with_config(
        &corpus,
        MatchConfig {
            expand_synonyms: false,
            ..MatchConfig::default()
        },
    );

    println!("\nScoring ablation (hit counts identical by construction):");
    println!(
        "{:<56} {:>8} {:>14} {:>16}",
        "Query", "hits", "top10 overlap", "expansion moved"
    );
    for query in QUERIES {
        let a = tfidf.match_text(query);
        let b = bm25.match_text(query);
        let plain = no_expand.match_text(query);
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.counts(), plain.counts());
        let overlap = rank_overlap(&a.vulnerability_ids(), &b.vulnerability_ids(), 10);
        let moved = a.vulnerability_ids() != plain.vulnerability_ids();
        println!(
            "{query:<56} {:>8} {:>13.0}% {:>16}",
            a.total(),
            overlap * 100.0,
            if moved { "yes" } else { "no" }
        );
    }

    // IDF-floor sensitivity: how the Table 1 rows react to the single-term
    // distinctiveness threshold. Too low and weak shared tokens ("ni")
    // cross-match product lines; too high and rare single-token attributes
    // ("Labview") stop matching at small corpus scales.
    println!("\nIDF-floor sensitivity (Table 1 row totals):");
    println!(
        "{:<8} {:>10} {:>10} {:>14} {:>12}",
        "floor", "labview", "crio9063", "rtlinux", "windows7"
    );
    for floor in [0.8, 1.2, 1.8, 2.5, 4.0] {
        let engine = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                idf_floor: floor,
                ..MatchConfig::default()
            },
        );
        println!(
            "{floor:<8} {:>10} {:>10} {:>14} {:>12}",
            engine.match_text("Labview").total(),
            engine.match_text("NI cRIO 9063").total(),
            engine.match_text("NI RT Linux OS").total(),
            engine.match_text("Windows 7").total(),
        );
    }
    println!(
        "expected shape: the default (1.8) keeps niche rows small and stable; a low floor\n\
         inflates the cRIO row with every record sharing the vendor token — the paper's\n\
         sensitivity-to-attribute-description observation, quantified."
    );

    let mut group = c.benchmark_group("scoring");
    group.sample_size(20);
    for (name, engine) in [
        ("tfidf+expand", &tfidf),
        ("bm25+expand", &bm25),
        ("tfidf-plain", &no_expand),
    ] {
        group.bench_with_input(BenchmarkId::new("queries", name), engine, |b, engine| {
            b.iter(|| {
                let mut total = 0usize;
                for query in QUERIES {
                    total += engine.match_text(query).total();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
