//! E2 — Figure 1: the merged system-model + attack-vector view.
//!
//! Prints the per-component association summary (the figure's content),
//! then times association construction and DOT rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cpssec_analysis::{render, AssociationMap};
use cpssec_model::Fidelity;
use cpssec_scada::model::scada_model;
use cpssec_search::FilterPipeline;

fn bench_figure1(c: &mut Criterion) {
    let corpus = cpssec_bench::corpus();
    let engine = cpssec_bench::engine(&corpus);
    let model = scada_model();
    let filters = FilterPipeline::new();

    let map = AssociationMap::build(&model, &engine, &corpus, Fidelity::Implementation, &filters);
    println!("\nFigure 1 — merged view (component: AP/CWE/CVE):");
    for (component, matches) in map.iter() {
        let (p, w, v) = matches.counts();
        println!("  {component:<24} {p:>4} / {w:>4} / {v:>6}");
    }
    let dot = render::model_dot(&model, Some(&map));
    println!("DOT: {} bytes, {} lines", dot.len(), dot.lines().count());

    let mut group = c.benchmark_group("figure1");
    group.sample_size(20);
    group.bench_function("associate_model", |b| {
        b.iter(|| {
            black_box(AssociationMap::build(
                &model,
                &engine,
                &corpus,
                Fidelity::Implementation,
                &filters,
            ))
        })
    });
    group.bench_function("render_dot", |b| {
        b.iter(|| black_box(render::model_dot(&model, Some(&map))))
    });
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
