//! E5 — What-if architecture comparison: "a component … that relates with
//! less attack vectors than a functionally equivalent system has a better
//! security posture" (§3).
//!
//! Prints posture deltas for representative component swaps, then times a
//! full what-if evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cpssec_analysis::whatif::{evaluate, ModelChange};
use cpssec_model::{Attribute, AttributeKind, Fidelity};
use cpssec_scada::model::{names, scada_model};
use cpssec_search::FilterPipeline;

fn swaps() -> Vec<(&'static str, Vec<ModelChange>)> {
    vec![
        (
            "harden-workstation",
            vec![
                ModelChange::ReplaceAttribute {
                    component: names::WORKSTATION.into(),
                    key: "os".into(),
                    with: Attribute::new(AttributeKind::OperatingSystem, "hardened thin client")
                        .at_fidelity(Fidelity::Implementation),
                },
                ModelChange::RemoveAttribute {
                    component: names::WORKSTATION.into(),
                    key: "software".into(),
                    value: "Labview".into(),
                },
            ],
        ),
        (
            "swap-sis-to-safety-plc",
            vec![ModelChange::ReplaceAttribute {
                component: names::SIS.into(),
                key: "hardware".into(),
                with: Attribute::new(AttributeKind::Hardware, "dedicated safety PLC")
                    .at_fidelity(Fidelity::Implementation),
            }],
        ),
        (
            "add-windows-historian-to-bpcs",
            vec![ModelChange::AddAttribute {
                component: names::BPCS.into(),
                attribute: Attribute::new(AttributeKind::Software, "Windows 7 historian client")
                    .at_fidelity(Fidelity::Implementation),
            }],
        ),
    ]
}

fn bench_whatif(c: &mut Criterion) {
    let corpus = cpssec_bench::corpus();
    let engine = cpssec_bench::engine(&corpus);
    let model = scada_model();
    let filters = FilterPipeline::new();

    println!("\nWhat-if posture deltas (lower score = better posture):");
    println!(
        "{:<32} {:>12} {:>12} {:>10}",
        "Swap", "before", "after", "delta"
    );
    for (name, changes) in swaps() {
        let report = evaluate(
            &model,
            &changes,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &filters,
        )
        .expect("swaps reference existing components");
        println!(
            "{name:<32} {:>12.2} {:>12.2} {:>+10.2}",
            report.before.total_score, report.after.total_score, report.score_delta
        );
    }
    println!(
        "expected shape: hardening improves (negative delta); adding commodity\n\
         software to a safety-critical platform regresses (positive delta).\n\
         note: a swap to a *vaguely described* alternative (\"dedicated safety PLC\")\n\
         can regress on paper — generic terms match many records, the paper's\n\
         \"unspecific properties result in … many irrelevant results\" effect."
    );

    let mut group = c.benchmark_group("whatif");
    group.sample_size(10);
    for (name, changes) in swaps() {
        group.bench_with_input(
            BenchmarkId::new("evaluate", name),
            &changes,
            |b, changes| {
                b.iter(|| {
                    black_box(
                        evaluate(
                            &model,
                            changes,
                            &engine,
                            &corpus,
                            Fidelity::Implementation,
                            &filters,
                        )
                        .expect("valid changes"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_whatif);
criterion_main!(benches);
