//! E14 — telemetry tick overhead and history-query latency.
//!
//! The tick thread runs once per second alongside the serving path, so
//! its budget is a fraction of one tick interval: the headline claim is
//! mean tick cost ≤ 1% of the interval (10 ms of a 1 s tick), measured
//! with every route the load generator exercises active. The second
//! claim is that a full 12 h-window `/metrics/history` query (720
//! one-minute slots) answers in under 5 ms. `CPSSEC_BENCH_FAST=1`
//! shrinks rounds; `CPSSEC_SCALE` picks the corpus scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::{Duration, Instant};

use cpssec_server::AppState;

fn fast_mode() -> bool {
    std::env::var("CPSSEC_BENCH_FAST").is_ok_and(|v| v == "1")
}

fn bench_scale() -> f64 {
    std::env::var("CPSSEC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

/// The routes the load generator cycles through — the realistic set of
/// active series during `serve` under load.
const ROUTES: [&str; 4] = [
    "GET /healthz",
    "GET /models/:id/associate",
    "GET /table1",
    "POST /models/:id/whatif",
];

fn bench_telemetry_tick(c: &mut Criterion) {
    let fast = fast_mode();
    let scale = bench_scale();
    let corpus = cpssec_bench::corpus_at(scale);
    let state = AppState::new(corpus);

    // Seed per-route traffic and tick once so every series exists.
    for (i, route) in ROUTES.iter().enumerate() {
        for n in 0..32u64 {
            state
                .metrics
                .record(route, 200, Duration::from_micros(50 + n * (i as u64 + 1)));
        }
    }
    let mut ts_ms: u64 = 1_000_000;
    state.telemetry_tick(ts_ms);

    // Mean tick cost with fresh per-tick traffic (the realistic case:
    // histograms changed since the previous tick on every route).
    let rounds = if fast { 200 } else { 2_000 };
    let started = Instant::now();
    for _ in 0..rounds {
        for route in ROUTES {
            state.metrics.record(route, 200, Duration::from_micros(300));
        }
        ts_ms += 1_000;
        state.telemetry_tick(ts_ms);
    }
    let tick_us = started.elapsed().as_secs_f64() * 1e6 / f64::from(rounds);

    // A 12 h window at 1-minute resolution: fill all 720 slots of one
    // series, then time the query (ring copy + live-slot append).
    let store = &state.telemetry.store;
    for slot in 0..720u64 {
        store.push_at("bench:p99_us", 2, slot * 60_000, 1_000.0 + slot as f64);
    }
    let query_rounds = if fast { 500 } else { 5_000 };
    let started = Instant::now();
    for _ in 0..query_rounds {
        black_box(store.query("bench:p99_us", 2));
    }
    let query_us = started.elapsed().as_secs_f64() * 1e6 / f64::from(query_rounds);

    // And the same window through the JSON renderer (what the endpoint
    // actually serves).
    let started = Instant::now();
    for _ in 0..query_rounds {
        black_box(state.telemetry.history_json(&["bench:p99_us"], 2));
    }
    let json_us = started.elapsed().as_secs_f64() * 1e6 / f64::from(query_rounds);

    let series = store.names().len();
    println!("\nE14 — telemetry tick + history query at scale {scale}:");
    println!(
        "  tick, {series} live series          : {tick_us:>10.1} us  ({:.3}% of a 1 s tick)",
        tick_us / 10_000.0
    );
    println!("  12 h query (720 pts, raw)       : {query_us:>10.1} us");
    println!("  12 h query (720 pts, JSON)      : {json_us:>10.1} us");

    let mut group = c.benchmark_group("telemetry_tick");
    group.sample_size(if fast { 10 } else { 50 });
    group.throughput(Throughput::Elements(ROUTES.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("tick", format!("{series}series")),
        &(),
        |b, ()| {
            b.iter(|| {
                for route in ROUTES {
                    state.metrics.record(route, 200, Duration::from_micros(300));
                }
                ts_ms += 1_000;
                state.telemetry_tick(ts_ms);
            });
        },
    );
    group.bench_with_input(BenchmarkId::new("query_12h", "720pts"), &(), |b, ()| {
        b.iter(|| black_box(state.telemetry.history_json(&["bench:p99_us"], 2)));
    });
    group.finish();

    // Budget checks. The tick runs once per interval, so ≤ 1% of a 1 s
    // tick means ≤ 10 ms — in practice it is microseconds. The 12 h
    // query must answer well under the 5 ms acceptance bound.
    assert!(
        tick_us < 10_000.0,
        "telemetry tick costs {tick_us:.0} us, over 1% of a 1 s interval"
    );
    assert!(
        json_us < 5_000.0,
        "12 h history query costs {json_us:.0} us, over the 5 ms bound"
    );
}

criterion_group!(benches, bench_telemetry_tick);
criterion_main!(benches);
