//! E17 — Zero-copy snapshot mapping at corpus scale: `view::open` versus
//! the owned `snapshot::decode`, plus incremental `.cpsdelta` growth
//! versus rebuild-from-scratch.
//!
//! The borrowed view validates the header and section geometry in
//! *O(header)* and answers queries straight from the mapped bytes, so its
//! open cost stays flat while the owned decode grows with the corpus. The
//! acceptance criterion is a >=50x open speedup at the 100k-record scale
//! (`CPSSEC_SCALE=3`); the assertion is guarded below 50k records so the
//! default 11k run reports without failing. `CPSSEC_BENCH_FAST=1` (CI
//! test mode) shrinks sample counts. Results land in
//! `BENCH_snapshot_scale.json` for the experiment log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use cpssec_attackdb::synth::delta_batch;
use cpssec_search::{apply_delta, build_delta, snapshot, view, SearchEngine, ViewEngine};

fn fast_mode() -> bool {
    std::env::var("CPSSEC_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// Defaults to the paper-shaped 11k-record scale; CI's scale sweep sets
/// `CPSSEC_SCALE=3` for the 100k acceptance run.
fn bench_scale() -> f64 {
    std::env::var("CPSSEC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3)
}

fn mean_us(rounds: usize, mut work: impl FnMut()) -> f64 {
    let started = Instant::now();
    for _ in 0..rounds {
        work();
    }
    started.elapsed().as_secs_f64() * 1e6 / rounds.max(1) as f64
}

/// Resident set size in kilobytes via `/proc/self/statm` (0 where
/// unavailable) — the E17 log pairs open times with memory footprints.
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| {
            s.split_whitespace()
                .nth(1)
                .and_then(|pages| pages.parse::<u64>().ok())
        })
        .map_or(0, |pages| pages * 4096 / 1024)
}

fn bench_snapshot_scale(c: &mut Criterion) {
    let fast = fast_mode();
    let scale = bench_scale();
    let corpus = cpssec_bench::corpus_at(scale);
    let records = corpus.stats().total() as u64;
    let engine = SearchEngine::build(&corpus);
    let snap = snapshot::encode(&corpus, &engine);
    let mapped: Arc<[u8]> = snap.clone().into();
    let query = "Microsoft Windows 7 remote code execution";

    // Headline: borrowed open (O(header)) vs owned decode (O(payload)).
    let decode_rounds = if fast { 2 } else { 5 };
    let open_rounds = if fast { 50 } else { 500 };
    let rss_before_kb = rss_kb();
    let decode_us = mean_us(decode_rounds, || {
        black_box(snapshot::decode(&snap).expect("decode"));
    });
    let rss_owned_kb = rss_kb();
    let open_us = mean_us(open_rounds, || {
        black_box(view::open(Arc::clone(&mapped)).expect("open"));
    });
    let verified_us = mean_us(decode_rounds, || {
        black_box(view::open_verified(Arc::clone(&mapped)).expect("open_verified"));
    });
    let speedup = decode_us / open_us.max(1e-3);

    // Time-to-first-answer from cold bytes, both sides.
    let first_query_view_us = mean_us(decode_rounds, || {
        let viewed = ViewEngine::new(view::open_verified(Arc::clone(&mapped)).expect("open"));
        black_box(viewed.match_text(query));
    });
    let first_query_owned_us = mean_us(decode_rounds, || {
        let (_, thawed) = snapshot::decode(&snap).expect("decode");
        black_box(thawed.match_text(query));
    });

    // Incremental growth: one 1k-record `.cpsdelta` applied to the live
    // pair, against a full rebuild of the grown corpus.
    let parent = snapshot::inspect(&snap).expect("inspect").snapshot_id;
    let batch = delta_batch(42, 1_000, 0);
    let delta = build_delta(parent, &batch);
    let apply_us = mean_us(decode_rounds, || {
        let mut grown_corpus = corpus.clone();
        let mut grown_engine = engine.clone();
        apply_delta(&mut grown_corpus, &mut grown_engine, &delta, parent).expect("apply");
        black_box(&grown_engine);
    });
    let mut grown_corpus = corpus.clone();
    let mut grown_engine = engine.clone();
    apply_delta(&mut grown_corpus, &mut grown_engine, &delta, parent).expect("apply");
    let rebuild_us = mean_us(decode_rounds, || {
        black_box(SearchEngine::build(&grown_corpus));
    });

    println!("\nE17 — zero-copy mapping at scale {scale} ({records} records):");
    println!("  snapshot size       : {:>10} bytes", snap.len());
    println!("  owned decode        : {decode_us:>10.0} us  (rss {rss_owned_kb} kB, baseline {rss_before_kb} kB)");
    println!("  view open           : {open_us:>10.2} us  ({speedup:.0}x faster than decode)");
    println!("  view open_verified  : {verified_us:>10.0} us  (adds the checksum pass)");
    println!("  first query (view)  : {first_query_view_us:>10.0} us");
    println!("  first query (owned) : {first_query_owned_us:>10.0} us");
    println!(
        "  delta apply (1k rec): {apply_us:>10.0} us  vs rebuild {rebuild_us:>10.0} us ({:.1}x)",
        rebuild_us / apply_us.max(1.0)
    );

    let json = format!(
        "{{\"scale\":{scale},\"records\":{records},\"snapshotBytes\":{},\
         \"decodeUs\":{decode_us:.1},\"viewOpenUs\":{open_us:.2},\
         \"viewOpenVerifiedUs\":{verified_us:.1},\"openSpeedup\":{speedup:.1},\
         \"firstQueryViewUs\":{first_query_view_us:.1},\
         \"firstQueryOwnedUs\":{first_query_owned_us:.1},\
         \"deltaApplyUs\":{apply_us:.1},\"rebuildUs\":{rebuild_us:.1},\
         \"rssOwnedKb\":{rss_owned_kb}}}",
        snap.len()
    );
    std::fs::write("BENCH_snapshot_scale.json", &json).expect("write bench artifact");
    println!("  wrote BENCH_snapshot_scale.json");

    let mut group = c.benchmark_group("snapshot_scale");
    group.sample_size(if fast { 2 } else { 10 });
    group.throughput(Throughput::Elements(records));
    group.bench_with_input(
        BenchmarkId::new("view_open", format!("{records}rec")),
        &mapped,
        |b, mapped| b.iter(|| black_box(view::open(Arc::clone(mapped)).expect("open"))),
    );
    group.bench_with_input(
        BenchmarkId::new("owned_decode", format!("{records}rec")),
        &snap,
        |b, snap| b.iter(|| black_box(snapshot::decode(snap).expect("decode"))),
    );
    group.bench_with_input(
        BenchmarkId::new("delta_apply_1k", format!("{records}rec")),
        &delta,
        |b, delta| {
            b.iter(|| {
                let mut grown_corpus = corpus.clone();
                let mut grown_engine = engine.clone();
                apply_delta(&mut grown_corpus, &mut grown_engine, delta, parent).expect("apply");
                black_box(&grown_engine);
            })
        },
    );
    group.finish();

    assert!(
        speedup >= 50.0 || records < 50_000,
        "zero-copy open must be >=50x faster than the owned decode at the \
         100k scale (open {open_us:.2} us vs decode {decode_us:.0} us, {speedup:.1}x)"
    );
}

criterion_group!(benches, bench_snapshot_scale);
criterion_main!(benches);
