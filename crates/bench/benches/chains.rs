//! E8 — Exploit chains across the interlinked corpora (§2: the datasets'
//! "interconnections with one another" capture both the attacker's and the
//! system owner's perspectives).
//!
//! Prints chain counts per Table 1 attribute, then times chain mining.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cpssec_attackdb::CweId;
use cpssec_search::{chains_for_weakness, exploit_chains};

fn bench_chains(c: &mut Criterion) {
    let corpus = cpssec_bench::corpus();
    let engine = cpssec_bench::engine(&corpus);

    println!("\nExploit chains per Table 1 attribute (vuln -> weakness -> pattern):");
    for (attribute, ..) in cpssec_bench::TABLE1_PAPER {
        let matches = engine.match_text(attribute);
        let chains = exploit_chains(&matches, &corpus, usize::MAX);
        println!("  {attribute:<16} {:>8} chains", chains.len());
    }
    let cwe78 = CweId::new(78);
    println!(
        "  corpus-wide chains through CWE-78: {}",
        chains_for_weakness(&corpus, cwe78, usize::MAX).len()
    );

    let mut group = c.benchmark_group("chains");
    group.sample_size(10);
    for (attribute, ..) in [("Windows 7", 0, 0, 0), ("NI cRIO 9063", 0, 0, 0)] {
        let matches = engine.match_text(attribute);
        group.bench_with_input(
            BenchmarkId::new("mine", attribute),
            &matches,
            |b, matches| b.iter(|| black_box(exploit_chains(matches, &corpus, usize::MAX).len())),
        );
    }
    group.bench_function("weakness_pivot_cwe78", |b| {
        b.iter(|| black_box(chains_for_weakness(&corpus, cwe78, usize::MAX).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_chains);
criterion_main!(benches);
