//! E16 — Exploit-chain campaign throughput and thread scaling.
//!
//! Compiles the matched exploit chains of both built-in testbeds into
//! staged attack campaigns, executes them at 1 worker thread and at one
//! thread per core, and asserts the records hash is identical — the
//! thread count must never change the verdict partition. Prints the
//! reached-hazard / contained / textual-only split per testbed, then
//! times chain compilation and a single-testbed campaign run.
//!
//! `CPSSEC_BENCH_FAST=1` (CI test mode) shrinks the chain budget so the
//! bench completes in seconds while still exercising both assertions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use cpssec_campaign::{
    compile_chains, records_hash, run_campaign, verdict_counts, CampaignRun, Testbed,
};

fn fast_mode() -> bool {
    std::env::var("CPSSEC_BENCH_FAST").is_ok_and(|v| v == "1")
}

fn bench_campaigns(c: &mut Criterion) {
    let fast = fast_mode();
    let chain_limit = if fast { 12 } else { 64 };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!("\nE16 — campaign throughput (chain budget {chain_limit}):");
    for testbed in Testbed::ALL {
        let run_at = |threads: usize| {
            let mut run = CampaignRun::new(testbed, 42);
            run.threads = threads;
            run.chain_limit = chain_limit;
            let started = Instant::now();
            let records = run_campaign(&run);
            let elapsed = started.elapsed().as_secs_f64();
            let rate = records.len() as f64 / elapsed.max(1e-9);
            (records, rate)
        };
        let (records_one, rate_one) = run_at(1);
        let (records_many, rate_many) = run_at(cores);
        assert_eq!(
            records_hash(&records_one),
            records_hash(&records_many),
            "thread count must never change the {} verdicts",
            testbed.as_str()
        );
        let (reached, contained, textual) = verdict_counts(&records_one);
        println!(
            "  {:<6}: {} chains ({reached} reached, {contained} contained, {textual} textual), \
             {rate_one:.1}/s at 1 thread, {rate_many:.1}/s at {cores}, hash {:016x}",
            testbed.as_str(),
            records_one.len(),
            records_hash(&records_one),
        );
    }

    let corpus = cpssec_attackdb::seed::seed_corpus();
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("compile_chains", |b| {
        let model = Testbed::Water.model();
        let library = Testbed::Water.scenario_library();
        b.iter(|| black_box(compile_chains(&model, &corpus, &library, chain_limit)));
    });
    group.bench_function("water_campaign", |b| {
        let mut run = CampaignRun::new(Testbed::Water, 42);
        run.chain_limit = if fast { 6 } else { 16 };
        b.iter(|| black_box(run_campaign(&run)));
    });
    group.finish();
}

criterion_group!(benches, bench_campaigns);
criterion_main!(benches);
