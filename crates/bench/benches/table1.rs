//! E1 — Table 1: per-attribute attack vector counts over the SCADA model.
//!
//! Prints the measured-vs-paper table, then times the per-attribute match
//! and the full table regeneration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let corpus = cpssec_bench::corpus();
    let engine = cpssec_bench::engine(&corpus);
    let stats = corpus.stats();
    println!(
        "corpus: {} patterns / {} weaknesses / {} vulnerabilities (CPSSEC_SCALE={})",
        stats.patterns,
        stats.weaknesses,
        stats.vulnerabilities,
        cpssec_bench::scale()
    );
    cpssec_bench::print_table1(&engine);

    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    for (attribute, ..) in cpssec_bench::TABLE1_PAPER {
        group.bench_with_input(
            BenchmarkId::new("match_attribute", attribute),
            &attribute,
            |b, attr| b.iter(|| black_box(engine.match_text(attr).counts())),
        );
    }
    group.bench_function("full_table", |b| {
        b.iter(|| {
            let mut total = 0;
            for (attribute, ..) in cpssec_bench::TABLE1_PAPER {
                total += engine.match_text(attribute).total();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
