//! E6 — Attack vectors to physical consequences (§3 narrative + Triton).
//!
//! Prints the consequence table for every built-in scenario, then times a
//! nominal batch and representative attack batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cpssec_analysis::consequence::analyze_scenario;
use cpssec_analysis::stpa::centrifuge_analysis;
use cpssec_analysis::AssociationMap;
use cpssec_model::Fidelity;
use cpssec_scada::{attacks, ScadaConfig, ScadaHarness};
use cpssec_search::FilterPipeline;
use cpssec_sim::Tick;

fn bench_attack_sim(c: &mut Criterion) {
    let corpus = cpssec_bench::corpus();
    let engine = cpssec_bench::engine(&corpus);
    let model = cpssec_scada::model::scada_model();
    let association = AssociationMap::build(
        &model,
        &engine,
        &corpus,
        Fidelity::Implementation,
        &FilterPipeline::new(),
    );
    let stpa = centrifuge_analysis();
    let config = ScadaConfig::default();

    println!("\nAttack consequence table:");
    println!(
        "{:<32} {:<16} {:>8} {:>8} {:<10} {:<14}",
        "Scenario", "product", "SIStrip", "exploded", "hazards", "losses"
    );
    for scenario in attacks::all_scenarios() {
        let record = analyze_scenario(&scenario, &association, &stpa, &config, 12_000);
        println!(
            "{:<32} {:<16} {:>8} {:>8} {:<10} {:<14}",
            record.scenario,
            record.product.to_string(),
            if record.emergency_stopped {
                "yes"
            } else {
                "no"
            },
            if record.exploded { "yes" } else { "no" },
            record.hazard_ids.join(","),
            record.loss_ids.join(","),
        );
    }

    let mut group = c.benchmark_group("attack_sim");
    group.sample_size(10);
    group.bench_function("nominal_batch", |b| {
        b.iter(|| {
            let mut harness = ScadaHarness::new(config.clone());
            black_box(harness.run_batch())
        })
    });
    for (name, scenario) in [
        (
            "command_injection",
            attacks::command_injection_bpcs(Tick::new(3000)),
        ),
        ("sensor_spoof", attacks::sensor_spoof(Tick::new(100))),
        (
            "triton_overtemp",
            attacks::sis_disable_overtemp(Tick::new(100), Tick::new(1500)),
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("attack_batch", name), &scenario, |b, s| {
            b.iter(|| {
                let mut harness = ScadaHarness::with_attack(config.clone(), s);
                black_box(harness.run_batch_for(12_000))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attack_sim);
criterion_main!(benches);
