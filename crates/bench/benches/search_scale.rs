//! E7 — Search scale behaviour: supports the paper's "the total number of
//! attack vectors returned by the search process is large" observation.
//!
//! Prints corpus sizes and match counts at each scale, then times index
//! construction and query latency as the corpus grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cpssec_model::Fidelity;
use cpssec_scada::model::scada_model;
use cpssec_search::SearchEngine;

const SCALES: [f64; 3] = [0.02, 0.1, 0.3];

fn bench_search_scale(c: &mut Criterion) {
    println!("\nSearch scale sweep:");
    println!(
        "{:<8} {:>10} {:>16} {:>14}",
        "scale", "records", "win7 matches", "linux matches"
    );
    let corpora: Vec<_> = SCALES
        .iter()
        .map(|&scale| (scale, cpssec_bench::corpus_at(scale)))
        .collect();
    for (scale, corpus) in &corpora {
        let engine = SearchEngine::build(corpus);
        println!(
            "{scale:<8} {:>10} {:>16} {:>14}",
            corpus.stats().total(),
            engine.match_text("Windows 7").total(),
            engine.match_text("NI RT Linux OS").total(),
        );
    }

    let mut group = c.benchmark_group("search_scale");
    group.sample_size(10);
    for (scale, corpus) in &corpora {
        let records = corpus.stats().total() as u64;
        group.throughput(Throughput::Elements(records));
        group.bench_with_input(
            BenchmarkId::new("build_index", format!("{records}rec")),
            corpus,
            |b, corpus| b.iter(|| black_box(SearchEngine::build(corpus))),
        );
        let engine = SearchEngine::build(corpus);
        group.bench_with_input(
            BenchmarkId::new("query", format!("{records}rec")),
            &engine,
            |b, engine| {
                b.iter(|| {
                    black_box(engine.match_text("NI RT Linux OS").total())
                        + black_box(engine.match_text("Cisco ASA").total())
                })
            },
        );
        // Whole-topology association: every component of the SCADA testbed
        // matched at implementation fidelity — the paper's interactive unit
        // of work for what-if edits.
        let model = scada_model();
        group.throughput(Throughput::Elements(model.component_count() as u64));
        group.bench_with_input(
            BenchmarkId::new("match_model", format!("{records}rec")),
            &engine,
            |b, engine| {
                b.iter(|| {
                    black_box(
                        engine
                            .match_model(&model, Fidelity::Implementation)
                            .iter()
                            .map(|(_, set)| set.total())
                            .sum::<usize>(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("par_match_model", format!("{records}rec")),
            &engine,
            |b, engine| {
                b.iter(|| {
                    black_box(
                        engine
                            .par_match_model(&model, Fidelity::Implementation)
                            .iter()
                            .map(|(_, set)| set.total())
                            .sum::<usize>(),
                    )
                })
            },
        );
        let _ = scale;
    }
    group.finish();
}

criterion_group!(benches, bench_search_scale);
criterion_main!(benches);
