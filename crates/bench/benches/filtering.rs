//! E4 — Filtering: "filtering functionality is implemented to manage these
//! attack vectors" (§3).
//!
//! Prints the volume reduction of representative filter cascades over the
//! full SCADA result space, then times pipeline application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cpssec_attackdb::{Abstraction, Severity};
use cpssec_model::Fidelity;
use cpssec_scada::model::scada_model;
use cpssec_search::{Filter, FilterPipeline};

fn cascades() -> Vec<(&'static str, FilterPipeline)> {
    vec![
        ("none", FilterPipeline::new()),
        (
            "severity>=high",
            FilterPipeline::new().then(Filter::SeverityAtLeast(Severity::High)),
        ),
        (
            "severity>=critical",
            FilterPipeline::new().then(Filter::SeverityAtLeast(Severity::Critical)),
        ),
        (
            "standard-patterns+top20",
            FilterPipeline::new()
                .then(Filter::AbstractionIn(vec![Abstraction::Standard]))
                .then(Filter::TopKPerFamily(20)),
        ),
        (
            "early-lifecycle-drop-vulns",
            FilterPipeline::new().then(Filter::DropVulnerabilities),
        ),
        (
            "triage-high-2terms-top10",
            FilterPipeline::new()
                .then(Filter::SeverityAtLeast(Severity::High))
                .then(Filter::MinMatchedTerms(2))
                .then(Filter::TopKPerFamily(10)),
        ),
    ]
}

fn bench_filtering(c: &mut Criterion) {
    let corpus = cpssec_bench::corpus();
    let engine = cpssec_bench::engine(&corpus);
    let model = scada_model();

    // The raw result space: every component matched at implementation level.
    let raw: Vec<_> = model
        .components()
        .map(|(_, comp)| engine.match_component(comp, Fidelity::Implementation))
        .collect();
    let raw_total: usize = raw.iter().map(|s| s.total()).sum();

    println!("\nFilter cascade volume (raw result space: {raw_total} vectors):");
    println!("{:<36} {:>10} {:>12}", "Cascade", "kept", "reduction");
    for (name, pipeline) in cascades() {
        let kept: usize = raw
            .iter()
            .map(|set| pipeline.apply(set, &corpus).total())
            .sum();
        println!(
            "{name:<36} {kept:>10} {:>11.1}%",
            100.0 * (1.0 - kept as f64 / raw_total.max(1) as f64)
        );
    }

    let mut group = c.benchmark_group("filtering");
    group.sample_size(20);
    for (name, pipeline) in cascades() {
        group.bench_with_input(BenchmarkId::new("apply", name), &pipeline, |b, pipeline| {
            b.iter(|| {
                let kept: usize = raw
                    .iter()
                    .map(|set| pipeline.apply(set, &corpus).total())
                    .sum();
                black_box(kept)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filtering);
criterion_main!(benches);
