//! Shared setup for the benchmark harness.
//!
//! Every bench regenerates its paper artifact (table rows or figure series)
//! on stdout before timing, so `cargo bench` doubles as the reproduction
//! run. The synthetic corpus scale is taken from the `CPSSEC_SCALE`
//! environment variable (default `0.05`); `CPSSEC_SCALE=1.0` reproduces the
//! paper's absolute corpus magnitudes.

use cpssec_attackdb::seed::seed_corpus;
use cpssec_attackdb::synth::{generate, SynthSpec};
use cpssec_attackdb::Corpus;
use cpssec_search::SearchEngine;

/// The paper's Table 1: `(attribute, patterns, weaknesses, vulnerabilities)`.
pub const TABLE1_PAPER: [(&str, usize, usize, usize); 6] = [
    ("Cisco ASA", 2, 1, 3776),
    ("NI RT Linux OS", 54, 75, 9673),
    ("Windows 7", 41, 73, 6627),
    ("Labview", 0, 0, 6),
    ("NI cRIO 9063", 0, 0, 7),
    ("NI cRIO 9064", 0, 0, 7),
];

/// The corpus scale requested through `CPSSEC_SCALE` (default 0.05).
#[must_use]
pub fn scale() -> f64 {
    std::env::var("CPSSEC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

/// Seed corpus merged with the paper-2020 synthetic corpus at `scale`.
#[must_use]
pub fn corpus_at(scale: f64) -> Corpus {
    let mut corpus = seed_corpus();
    corpus
        .merge(generate(&SynthSpec::paper2020(2020, scale)))
        .expect("seed and synthetic id spaces are disjoint");
    corpus
}

/// The standard benchmark corpus at the environment-selected scale.
#[must_use]
pub fn corpus() -> Corpus {
    corpus_at(scale())
}

/// An engine over the standard benchmark corpus.
#[must_use]
pub fn engine(corpus: &Corpus) -> SearchEngine {
    SearchEngine::build(corpus)
}

/// Prints a measured-vs-paper Table 1 and returns the measured rows.
pub fn print_table1(engine: &SearchEngine) -> Vec<(usize, usize, usize)> {
    println!("\nTable 1 — measured (paper):");
    println!(
        "{:<16} {:>18} {:>14} {:>18}",
        "Attribute", "Attack Patterns", "Weaknesses", "Vulnerabilities"
    );
    let mut measured = Vec::new();
    for (attribute, p, w, v) in TABLE1_PAPER {
        let counts = engine.match_text(attribute).counts();
        println!(
            "{attribute:<16} {:>18} {:>14} {:>18}",
            format!("{} ({p})", counts.0),
            format!("{} ({w})", counts.1),
            format!("{} ({v})", counts.2),
        );
        measured.push(counts);
    }
    measured
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_builds_and_is_nonempty() {
        let c = corpus_at(0.01);
        assert!(c.stats().vulnerabilities > 100);
    }

    #[test]
    fn table1_shape_at_bench_scale() {
        let c = corpus_at(0.02);
        let e = engine(&c);
        let rows = print_table1(&e);
        assert!(rows[1].2 > rows[2].2); // linux > win7
        assert_eq!(rows[3].0, 0); // labview: no patterns
    }
}
