//! Drives the compiled `cpssec` binary: error paths must exit non-zero
//! with a single stderr line (no panics, no usage dumps), and
//! `serve`/`load` must survive a real client run plus a clean SIGTERM.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

fn cpssec() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cpssec"))
}

/// Runs the binary, returning (exit success, stdout, stderr).
fn run(args: &[&str]) -> (bool, String, String) {
    let output = cpssec().args(args).output().expect("spawn cpssec");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn assert_one_line_failure(args: &[&str], needle: &str) {
    let (success, _stdout, stderr) = run(args);
    assert!(!success, "{args:?} should exit non-zero");
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "{args:?} stderr must be one line, got: {stderr:?}"
    );
    assert!(
        stderr.contains(needle),
        "{args:?} stderr should mention {needle:?}: {stderr:?}"
    );
    assert!(!stderr.contains("panicked"), "{args:?} panicked: {stderr}");
}

#[test]
fn associate_scada_with_trace_emits_a_valid_chrome_trace() {
    let dir = std::env::temp_dir().join("cpssec-bin-test");
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("associate.trace.json");
    let path_str = path.to_str().expect("utf8 path");

    let (success, stdout, stderr) =
        run(&["associate", "scada", "--scale", "0.01", "--trace", path_str]);
    assert!(success, "associate failed: {stderr}");
    assert!(stdout.contains("total:"), "{stdout}");

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let value = cpssec_attackdb::json::parse(&text).expect("trace is valid json");
    let events = value
        .get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("traceEvents is an array");
    assert!(!events.is_empty(), "trace should contain span events");
    let mut names = Vec::new();
    for event in events {
        // Complete events carry a phase, a timestamp, and a duration.
        assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(event.get("ts").is_some(), "missing ts: {event:?}");
        assert!(event.get("dur").is_some(), "missing dur: {event:?}");
        if let Some(name) = event.get("name").and_then(|v| v.as_str()) {
            names.push(name.to_owned());
        }
    }
    for stage in ["tokenize", "score", "associate"] {
        assert!(
            names.iter().any(|n| n == stage),
            "missing {stage} span, got {names:?}"
        );
    }
}

#[test]
fn unknown_subcommand_is_a_one_line_error() {
    assert_one_line_failure(&["frobnicate"], "unknown command");
}

#[test]
fn missing_command_is_a_one_line_error() {
    assert_one_line_failure(&[], "missing command");
}

#[test]
fn unreadable_model_file_is_a_one_line_error() {
    assert_one_line_failure(
        &["associate", "/nonexistent/model.graphml", "--scale", "0.01"],
        "cannot read",
    );
}

#[test]
fn malformed_graphml_is_a_one_line_error() {
    let dir = std::env::temp_dir().join("cpssec-bin-test");
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("broken.graphml");
    std::fs::write(&path, "<graphml><unclosed").expect("write");
    let path = path.to_str().expect("utf8 path");
    assert_one_line_failure(&["associate", path, "--scale", "0.01"], "cannot parse");
}

#[test]
fn bad_flag_values_are_one_line_errors() {
    assert_one_line_failure(&["serve", "--workers", "0"], "invalid workers");
    assert_one_line_failure(&["load", "--clients", "none"], "invalid clients");
}

#[test]
fn help_exits_zero_with_usage() {
    let (success, stdout, _) = run(&["help"]);
    assert!(success);
    assert!(stdout.contains("cpssec serve"));
    assert!(stdout.contains("cpssec load"));
}

#[test]
#[cfg(unix)]
fn serve_survives_load_and_sigterm_shuts_down_cleanly() {
    let dir = std::env::temp_dir().join("cpssec-bin-test");
    std::fs::create_dir_all(&dir).expect("tempdir");
    let trace_path = dir.join("serve.trace.json");
    let _ = std::fs::remove_file(&trace_path);
    // Ephemeral port, tiny corpus for fast startup. --trace proves the
    // SIGTERM drain also flushes the span ring to disk.
    let mut serve = cpssec()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--scale",
            "0.01",
            "--trace",
            trace_path.to_str().expect("utf8 path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    let stdout = serve.stdout.take().expect("stdout");
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_owned();

    let (success, stdout, stderr) = run(&[
        "load",
        "--addr",
        &addr,
        "--clients",
        "4",
        "--requests",
        "12",
    ]);
    assert!(success, "load failed: {stdout} {stderr}");
    assert!(stdout.contains(" 0 errors"), "{stdout}");

    // SIGTERM → graceful drain → exit code 0 and the shutdown banner.
    let term = Command::new("kill")
        .args(["-TERM", &serve.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let status = serve.wait().expect("serve exit");
    assert!(status.success(), "serve exited with {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).expect("drain stdout");
    assert!(rest.contains("shutdown complete"), "{rest:?}");

    // Final telemetry snapshot is printed before the shutdown banner.
    let snapshot_line = rest
        .lines()
        .find(|l| l.starts_with("final snapshot: "))
        .unwrap_or_else(|| panic!("missing final snapshot line: {rest:?}"));
    assert!(snapshot_line.contains("requests"), "{snapshot_line}");
    assert!(snapshot_line.contains("cache"), "{snapshot_line}");

    // The drained trace ring made it to disk, and served spans carry
    // per-request trace ids for Perfetto grouping.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written on drain");
    let value = cpssec_attackdb::json::parse(&text).expect("trace is valid json");
    let events = value
        .get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("traceEvents is an array");
    let served: Vec<_> = events
        .iter()
        .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("serve-request"))
        .collect();
    assert!(!served.is_empty(), "no serve-request spans in trace");
    for event in &served {
        let trace_id = event
            .get("args")
            .and_then(|a| a.get("trace_id"))
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("serve-request span missing trace_id: {event:?}"));
        assert_eq!(trace_id.len(), 32, "{trace_id}");
        assert_ne!(trace_id, "0".repeat(32));
    }
}

/// Builds a snapshot of the tiny corpus into a fresh temp dir and returns
/// its path as a string.
#[cfg(unix)]
fn build_snapshot(name: &str) -> String {
    let dir = std::env::temp_dir().join("cpssec-bin-test");
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join(name);
    let path = path.to_str().expect("utf8 path").to_owned();
    let (success, stdout, stderr) = run(&["snapshot", "build", &path, "--scale", "0.01"]);
    assert!(success, "snapshot build failed: {stderr}");
    assert!(stdout.contains("wrote "), "{stdout}");
    path
}

#[test]
#[cfg(unix)]
fn snapshot_build_inspect_verify_round_trip() {
    let path = build_snapshot("roundtrip.cpsnap");

    let (success, stdout, _) = run(&["snapshot", "inspect", &path]);
    assert!(success);
    assert!(stdout.contains("format version 2"), "{stdout}");
    assert!(stdout.contains("snapshot id"), "{stdout}");
    for section in ["corpus", "patterns", "weaknesses", "vulnerabilities"] {
        assert!(stdout.contains(section), "missing {section}: {stdout}");
    }

    let (success, stdout, _) = run(&["snapshot", "verify", &path]);
    assert!(success);
    assert!(stdout.starts_with("ok: "), "{stdout}");
}

#[test]
fn snapshot_usage_errors_are_one_line() {
    assert_one_line_failure(&["snapshot"], "needs an action");
    assert_one_line_failure(&["snapshot", "verify"], "needs a .cpsnap file path");
    assert_one_line_failure(
        &["snapshot", "defrost", "x.cpsnap"],
        "unknown snapshot action",
    );
    assert_one_line_failure(
        &["snapshot", "verify", "/nonexistent/x.cpsnap"],
        "cannot read",
    );
    assert_one_line_failure(
        &["serve", "--snapshot", "/nonexistent/x.cpsnap"],
        "cannot read",
    );
}

#[test]
#[cfg(unix)]
fn corrupted_snapshots_fail_verify_with_one_line_errors() {
    let path = build_snapshot("corrupt.cpsnap");
    let pristine = std::fs::read(&path).expect("read snapshot");
    let dir = std::env::temp_dir().join("cpssec-bin-test");

    // Truncated file.
    let truncated = dir.join("truncated.cpsnap");
    std::fs::write(&truncated, &pristine[..pristine.len() / 2]).expect("write");
    assert_one_line_failure(
        &["snapshot", "verify", truncated.to_str().unwrap()],
        "truncated",
    );

    // Bad magic.
    let mut bytes = pristine.clone();
    bytes[0] = b'Z';
    let bad_magic = dir.join("bad-magic.cpsnap");
    std::fs::write(&bad_magic, &bytes).expect("write");
    assert_one_line_failure(
        &["snapshot", "verify", bad_magic.to_str().unwrap()],
        "magic",
    );

    // Wrong format version.
    let mut bytes = pristine.clone();
    bytes[6] = 0xFE;
    let bad_version = dir.join("bad-version.cpsnap");
    std::fs::write(&bad_version, &bytes).expect("write");
    assert_one_line_failure(
        &["snapshot", "verify", bad_version.to_str().unwrap()],
        "version",
    );

    // Payload bit flip → checksum mismatch, and inspect (header-only)
    // still succeeds on the same file.
    let mut bytes = pristine.clone();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    let bad_sum = dir.join("bad-checksum.cpsnap");
    let bad_sum_path = bad_sum.to_str().unwrap().to_owned();
    std::fs::write(&bad_sum, &bytes).expect("write");
    assert_one_line_failure(&["snapshot", "verify", &bad_sum_path], "checksum");
    assert_one_line_failure(&["serve", "--snapshot", &bad_sum_path], "checksum");
    let (success, stdout, _) = run(&["snapshot", "inspect", &bad_sum_path]);
    assert!(success, "inspect reads headers only");
    assert!(stdout.contains("format version 2"), "{stdout}");

    // Byte-flip sweep over every section: a flip in the middle of each
    // payload is caught by that section's own checksum, both by `verify`
    // and by the zero-copy `serve --snapshot` boot path.
    let (success, json, _) = run(&["snapshot", "inspect", &path, "--json"]);
    assert!(success);
    let info = cpssec_attackdb::json::parse(json.trim()).expect("inspect --json is valid json");
    let sections = info.get("sections").unwrap().as_array().unwrap();
    assert_eq!(sections.len(), 4, "{json}");
    let as_usize = |value: &cpssec_attackdb::json::JsonValue| match value {
        cpssec_attackdb::json::JsonValue::Number(n) => *n as usize,
        other => panic!("expected a number, got {other:?}"),
    };
    for section in sections {
        let name = section.get("name").and_then(|v| v.as_str()).unwrap();
        let offset = as_usize(section.get("offset").unwrap());
        let len = as_usize(section.get("bytes").unwrap());
        let mut bytes = pristine.clone();
        bytes[offset + len / 2] ^= 0xFF;
        let flipped = dir.join(format!("flip-{name}.cpsnap"));
        let flipped_path = flipped.to_str().unwrap().to_owned();
        std::fs::write(&flipped, &bytes).expect("write");
        assert_one_line_failure(&["snapshot", "verify", &flipped_path], name);
        assert_one_line_failure(&["snapshot", "verify", &flipped_path], "checksum");
        assert_one_line_failure(&["serve", "--snapshot", &flipped_path], "checksum");
    }
}

#[test]
#[cfg(unix)]
fn corrupted_deltas_fail_with_one_line_errors() {
    let base = build_snapshot("delta-corrupt.cpsnap");
    let dir = std::env::temp_dir().join("cpssec-bin-test");
    let delta = dir.join("corrupt.cpsdelta");
    let delta_path = delta.to_str().unwrap().to_owned();
    let (success, stdout, stderr) = run(&["delta", "build", &base, &delta_path, "--records", "30"]);
    assert!(success, "delta build failed: {stderr}");
    assert!(stdout.contains("30 records"), "{stdout}");
    let pristine = std::fs::read(&delta).expect("read delta");

    let write_variant = |name: &str, bytes: &[u8]| {
        let path = dir.join(name);
        std::fs::write(&path, bytes).expect("write");
        path.to_str().unwrap().to_owned()
    };

    let truncated = write_variant("truncated.cpsdelta", &pristine[..pristine.len() / 2]);
    assert_one_line_failure(&["delta", "inspect", &truncated], "truncated");

    let mut bytes = pristine.clone();
    bytes[0] = b'Z';
    let bad_magic = write_variant("bad-magic.cpsdelta", &bytes);
    assert_one_line_failure(&["delta", "inspect", &bad_magic], "magic");

    let mut bytes = pristine.clone();
    bytes[6] = 0xFE;
    let bad_version = write_variant("bad-version.cpsdelta", &bytes);
    assert_one_line_failure(&["delta", "inspect", &bad_version], "version");

    // A payload flip fails the delta's own checksum before any record is
    // parsed, on inspect and on apply alike.
    let mut bytes = pristine.clone();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    let bad_sum = write_variant("bad-checksum.cpsdelta", &bytes);
    assert_one_line_failure(&["delta", "inspect", &bad_sum], "checksum");
    assert_one_line_failure(&["delta", "apply", &base, &bad_sum], "checksum");

    // Replaying the same delta twice breaks the parent chain.
    assert_one_line_failure(
        &["delta", "apply", &base, &delta_path, &delta_path],
        "parent",
    );
}

#[test]
#[cfg(unix)]
fn serve_boots_from_a_snapshot_and_survives_load() {
    let path = build_snapshot("serve.cpsnap");
    let mut serve = cpssec()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--snapshot",
            &path,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    let stdout = serve.stdout.take().expect("stdout");
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_owned();

    let (success, stdout, stderr) =
        run(&["load", "--addr", &addr, "--clients", "2", "--requests", "8"]);
    assert!(success, "load failed: {stdout} {stderr}");
    assert!(stdout.contains(" 0 errors"), "{stdout}");

    let term = Command::new("kill")
        .args(["-TERM", &serve.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let status = serve.wait().expect("serve exit");
    assert!(status.success(), "serve exited with {status:?}");
}
