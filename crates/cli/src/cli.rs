//! Command parsing and execution, separated from `main` for testability.

use std::io::Write;

use cpssec_analysis::consequence::standard_analysis;
use cpssec_analysis::render::text_table;
use cpssec_analysis::{attribute_rows, render, report, AssociationMap, SystemPosture};
use cpssec_attackdb::seed::seed_corpus;
use cpssec_attackdb::synth::{delta_batch, stream_into, SynthSpec};
use cpssec_attackdb::Corpus;
use cpssec_model::{Fidelity, SystemModel};
use cpssec_scada::{
    attacks, faults, run_campaign, AttackClass, BatchReport, CampaignSpec, ScadaConfig,
    ScadaHarness,
};
use cpssec_search::{apply_delta, build_delta, compact_verified, inspect_delta};
use cpssec_search::{FilterPipeline, SearchEngine};
const USAGE: &str = "usage:
  cpssec table1 [--scale S] [--corpus FILE.jsonl]
  cpssec associate <model.graphml|scada> [--fidelity conceptual|architectural|implementation]
                   [--scale S] [--corpus FILE.jsonl] [--top K]
  cpssec figure [--scale S] [--corpus FILE.jsonl]
  cpssec report [--scale S] [--corpus FILE.jsonl] [--simulate]
  cpssec simulate <scenario|nominal> [--ticks N]
  cpssec fleet [--scenarios N] [--seed S] [--threads N] [--ticks N]
               [--classes a,b,c] [--json]
  cpssec campaign <scada|water> [--seed S] [--threads N] [--json] [--csv]
  cpssec scenarios
  cpssec export-model [--fidelity LEVEL]
  cpssec export-corpus [--scale S]
  cpssec json [--scale S] [--corpus FILE.jsonl] [--fidelity LEVEL]
  cpssec snapshot build <FILE.cpsnap> [--scale S] [--corpus FILE.jsonl]
  cpssec snapshot inspect <FILE.cpsnap> [--json]
  cpssec snapshot verify <FILE.cpsnap>
  cpssec delta build <PARENT.cpsnap|.cpsdelta> <OUT.cpsdelta>
                     [--records N] [--serial K] [--seed S]
  cpssec delta inspect <FILE.cpsdelta> [--json]
  cpssec delta apply <BASE.cpsnap> <FILE.cpsdelta>... [--out FILE.cpsnap]
  cpssec delta compact <BASE.cpsnap> <FILE.cpsdelta>... [--out FILE.cpsnap]
  cpssec serve [--addr HOST:PORT] [--workers N] [--scale S] [--corpus FILE.jsonl]
               [--snapshot FILE.cpsnap] [--slo FILE.toml] [--tick-ms N]
  cpssec load [--addr HOST:PORT] [--clients N] [--requests M]
  cpssec help

the corpus defaults to the built-in seed + synthetic corpus at --scale;
--corpus loads a JSON Lines corpus (see cpssec_attackdb::jsonl) instead;
--snapshot warm-starts `serve` from a binary snapshot (see `snapshot build`);
--slo loads latency/error objectives for `serve` (the CPSSEC_SLO env var
holds the same syntax with `;` for newlines); --tick-ms sets the telemetry
tick interval (default 1000);
--trace FILE.json (any command) writes a Chrome trace of the pipeline
stages, viewable in Perfetto or chrome://tracing;
`associate scada` uses the built-in SCADA testbed model;
`fleet` runs a Monte-Carlo attack campaign on the centrifuge testbed —
deterministic per --seed at any --threads count; --classes restricts the
sampled attack classes (see `cpssec fleet --classes nope` for names);
`campaign` compiles the exploit chains matched against a testbed model
into multi-stage attack campaigns on the simulator and scores every
chain as reached-hazard, contained, or textual-only — deterministic per
--seed at any --threads count; --csv dumps the per-chain records;
`delta build` emits a synthetic `.cpsdelta` batch (deterministic per
--seed/--serial) chained onto the parent snapshot or delta; `delta apply`
grows a snapshot in place without an index rebuild, `delta compact`
additionally proves the grown snapshot byte-identical to a
rebuild-from-scratch before writing it.";

/// Parsed global options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Synthetic corpus scale.
    pub scale: f64,
    /// Fidelity for model-side operations.
    pub fidelity: Fidelity,
    /// Per-family result cap for `associate`.
    pub top: Option<usize>,
    /// Run the simulation inside `report`.
    pub simulate: bool,
    /// Tick budget for `simulate`.
    pub ticks: u64,
    /// Scenario count for `fleet`.
    pub scenarios: u64,
    /// Campaign seed for `fleet`.
    pub seed: u64,
    /// Worker threads for `fleet` (defaults to the core count).
    pub threads: Option<usize>,
    /// Comma-separated attack classes for `fleet`.
    pub classes: Option<String>,
    /// Emit the JSON artifact instead of the text table (`fleet`,
    /// `campaign`).
    pub json: bool,
    /// Emit the per-chain CSV records instead of the table (`campaign`).
    pub csv: bool,
    /// Path to a JSON Lines corpus replacing the built-in one.
    pub corpus_path: Option<String>,
    /// Path to a `.cpsnap` snapshot for `serve` warm start.
    pub snapshot_path: Option<String>,
    /// Path to an SLO config for `serve` (overrides `CPSSEC_SLO`).
    pub slo_path: Option<String>,
    /// Telemetry tick interval for `serve`, in milliseconds.
    pub tick_ms: Option<u64>,
    /// Path to write a Chrome-trace JSON of the run's pipeline spans.
    pub trace_path: Option<String>,
    /// Bind/connect address for `serve` and `load`.
    pub addr: String,
    /// Worker threads for `serve`.
    pub workers: usize,
    /// Concurrent clients for `load`.
    pub clients: usize,
    /// Requests per client for `load`.
    pub requests: usize,
    /// Record count for `delta build`.
    pub records: usize,
    /// Batch serial for `delta build` (its append-only id block).
    pub serial: u32,
    /// Output path for `delta apply`/`delta compact` (defaults to the
    /// base snapshot, growing it in place).
    pub out_path: Option<String>,
    /// Positional arguments.
    pub positional: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 0.05,
            fidelity: Fidelity::Implementation,
            top: None,
            simulate: false,
            ticks: 12_000,
            scenarios: 200,
            seed: 42,
            threads: None,
            classes: None,
            json: false,
            csv: false,
            corpus_path: None,
            snapshot_path: None,
            slo_path: None,
            tick_ms: None,
            trace_path: None,
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            clients: 4,
            requests: 16,
            records: 1_000,
            serial: 0,
            out_path: None,
            positional: Vec::new(),
        }
    }
}

/// Parses everything after the subcommand.
pub fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().ok_or("--scale needs a value")?;
                options.scale = value
                    .parse()
                    .map_err(|_| format!("invalid scale `{value}`"))?;
                if options.scale <= 0.0 {
                    return Err("scale must be positive".into());
                }
            }
            "--fidelity" => {
                let value = iter.next().ok_or("--fidelity needs a value")?;
                options.fidelity = value
                    .parse()
                    .map_err(|_| format!("invalid fidelity `{value}`"))?;
            }
            "--top" => {
                let value = iter.next().ok_or("--top needs a value")?;
                options.top = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid top `{value}`"))?,
                );
            }
            "--ticks" => {
                let value = iter.next().ok_or("--ticks needs a value")?;
                options.ticks = value
                    .parse()
                    .map_err(|_| format!("invalid ticks `{value}`"))?;
            }
            "--simulate" => options.simulate = true,
            "--scenarios" => {
                let value = iter.next().ok_or("--scenarios needs a value")?;
                options.scenarios = value
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("invalid scenarios `{value}`"))?;
            }
            "--seed" => {
                let value = iter.next().ok_or("--seed needs a value")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed `{value}`"))?;
            }
            "--threads" => {
                let value = iter.next().ok_or("--threads needs a value")?;
                options.threads = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid threads `{value}`"))?,
                );
            }
            "--classes" => {
                let value = iter.next().ok_or("--classes needs a value")?;
                options.classes = Some(value.clone());
            }
            "--json" => options.json = true,
            "--csv" => options.csv = true,
            "--corpus" => {
                let value = iter.next().ok_or("--corpus needs a path")?;
                options.corpus_path = Some(value.clone());
            }
            "--snapshot" => {
                let value = iter.next().ok_or("--snapshot needs a path")?;
                options.snapshot_path = Some(value.clone());
            }
            "--slo" => {
                let value = iter.next().ok_or("--slo needs a path")?;
                options.slo_path = Some(value.clone());
            }
            "--tick-ms" => {
                let value = iter.next().ok_or("--tick-ms needs a value")?;
                options.tick_ms = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid tick-ms `{value}`"))?,
                );
            }
            "--trace" => {
                let value = iter.next().ok_or("--trace needs a path")?;
                options.trace_path = Some(value.clone());
            }
            "--addr" => {
                let value = iter.next().ok_or("--addr needs a HOST:PORT value")?;
                options.addr = value.clone();
            }
            "--workers" => {
                let value = iter.next().ok_or("--workers needs a value")?;
                options.workers = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("invalid workers `{value}`"))?;
            }
            "--clients" => {
                let value = iter.next().ok_or("--clients needs a value")?;
                options.clients = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("invalid clients `{value}`"))?;
            }
            "--requests" => {
                let value = iter.next().ok_or("--requests needs a value")?;
                options.requests = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("invalid requests `{value}`"))?;
            }
            "--records" => {
                let value = iter.next().ok_or("--records needs a value")?;
                options.records = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0 && n <= 10_000)
                    .ok_or_else(|| format!("invalid records `{value}` (expected 1..=10000)"))?;
            }
            "--serial" => {
                let value = iter.next().ok_or("--serial needs a value")?;
                options.serial = value
                    .parse::<u32>()
                    .map_err(|_| format!("invalid serial `{value}`"))?;
            }
            "--out" => {
                let value = iter.next().ok_or("--out needs a path")?;
                options.out_path = Some(value.clone());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            positional => options.positional.push(positional.to_owned()),
        }
    }
    Ok(options)
}

fn corpus_at(scale: f64) -> Result<Corpus, String> {
    let mut corpus = seed_corpus();
    // Streaming generation: byte-identical to generate-then-merge but
    // never builds a second corpus, so `snapshot build --scale 30` stays
    // in bounded memory at the ~1M-record mark.
    stream_into(&mut corpus, &SynthSpec::paper2020(2020, scale))
        .map_err(|e| format!("cannot merge synthetic corpus: {e}"))?;
    Ok(corpus)
}

fn load_corpus(options: &Options) -> Result<Corpus, String> {
    match &options.corpus_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            cpssec_attackdb::jsonl::from_jsonl(&text)
                .map_err(|e| format!("cannot parse `{path}`: {e}"))
        }
        None => corpus_at(options.scale),
    }
}

/// Executes a full command line; output goes to `out`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command (run `cpssec help` for usage)".into());
    };
    let options = parse_options(rest)?;
    if options.trace_path.is_some() {
        let recorder = cpssec_obs::recorder();
        recorder.enable_spans();
        recorder.enable_trace();
        // A root trace id for the whole batch run, so every span in the
        // exported Chrome trace groups under one id (the server mints
        // per-request ids instead).
        cpssec_obs::set_trace_id(cpssec_obs::mint_trace_id());
    }
    let result = match command.as_str() {
        "table1" => cmd_table1(&options, out),
        "associate" => cmd_associate(&options, out),
        "figure" => cmd_figure(&options, out),
        "report" => cmd_report(&options, out),
        "simulate" => cmd_simulate(&options, out),
        "fleet" => cmd_fleet(&options, out),
        "campaign" => cmd_campaign(&options, out),
        "scenarios" => cmd_scenarios(out),
        "export-model" => cmd_export_model(&options, out),
        "export-corpus" => cmd_export_corpus(&options, out),
        "json" => cmd_json(&options, out),
        "snapshot" => cmd_snapshot(&options, out),
        "delta" => cmd_delta(&options, out),
        "serve" => cmd_serve(&options, out),
        "load" => cmd_load(&options, out),
        "help" | "--help" | "-h" => writeln!(out, "{USAGE}").map_err(|e| e.to_string()),
        other => Err(format!(
            "unknown command `{other}` (run `cpssec help` for usage)"
        )),
    };
    if let Some(path) = &options.trace_path {
        result?;
        std::fs::write(path, cpssec_obs::recorder().trace_json())
            .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
        return Ok(());
    }
    result
}

fn read_snapshot(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn cmd_snapshot(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let action = options
        .positional
        .first()
        .ok_or("snapshot needs an action: build, inspect, or verify")?;
    let path = options
        .positional
        .get(1)
        .ok_or_else(|| format!("snapshot {action} needs a .cpsnap file path"))?;
    match action.as_str() {
        "build" => {
            let corpus = load_corpus(options)?;
            let engine = SearchEngine::build(&corpus);
            let bytes = cpssec_search::snapshot::encode(&corpus, &engine);
            std::fs::write(path, &bytes).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            let stats = corpus.stats();
            writeln!(
                out,
                "wrote {path}: {} bytes, {} records ({} patterns, {} weaknesses, {} vulnerabilities)",
                bytes.len(),
                stats.total(),
                stats.patterns,
                stats.weaknesses,
                stats.vulnerabilities
            )
            .map_err(|e| e.to_string())
        }
        "inspect" => {
            let bytes = read_snapshot(path)?;
            let info = cpssec_search::snapshot::inspect(&bytes)
                .map_err(|e| format!("invalid snapshot `{path}`: {e}"))?;
            if options.json {
                let sections: Vec<render::Json> = info
                    .sections
                    .iter()
                    .map(|section| {
                        render::Json::Object(vec![
                            ("name".into(), section.name.into()),
                            ("offset".into(), (section.offset as f64).into()),
                            ("bytes".into(), (section.len as f64).into()),
                            (
                                "checksum".into(),
                                format!("{:016x}", section.checksum).as_str().into(),
                            ),
                        ])
                    })
                    .collect();
                let artifact = render::Json::Object(vec![
                    ("path".into(), path.as_str().into()),
                    ("formatVersion".into(), f64::from(info.version).into()),
                    (
                        "snapshotId".into(),
                        format!("{:016x}", info.snapshot_id).as_str().into(),
                    ),
                    ("payloadBytes".into(), (info.payload_len() as f64).into()),
                    ("sections".into(), render::Json::Array(sections)),
                ]);
                return writeln!(out, "{}", artifact.to_text()).map_err(|e| e.to_string());
            }
            writeln!(
                out,
                "{path}: format version {}, snapshot id {:016x}",
                info.version, info.snapshot_id
            )
            .map_err(|e| e.to_string())?;
            for section in &info.sections {
                writeln!(
                    out,
                    "  {:<16} offset {:>12}  {:>12} bytes  checksum {:016x}",
                    section.name, section.offset, section.len, section.checksum
                )
                .map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        "verify" => {
            let bytes = read_snapshot(path)?;
            let (corpus, _engine) = cpssec_search::snapshot::verify(&bytes)
                .map_err(|e| format!("invalid snapshot `{path}`: {e}"))?;
            let stats = corpus.stats();
            writeln!(
                out,
                "ok: {} records ({} patterns, {} weaknesses, {} vulnerabilities)",
                stats.total(),
                stats.patterns,
                stats.weaknesses,
                stats.vulnerabilities
            )
            .map_err(|e| e.to_string())
        }
        other => Err(format!(
            "unknown snapshot action `{other}` (expected build, inspect, or verify)"
        )),
    }
}

/// Resolves the state id a new delta should chain onto: the snapshot id
/// of a `.cpsnap`, or the child id of a `.cpsdelta` (so delta files can
/// chain on each other without re-reading the growing base).
fn parent_state_id(path: &str) -> Result<u64, String> {
    let bytes = read_snapshot(path)?;
    if let Ok(info) = cpssec_search::snapshot::inspect(&bytes) {
        return Ok(info.snapshot_id);
    }
    inspect_delta(&bytes)
        .map(|info| info.child_id)
        .map_err(|e| format!("`{path}` is neither a valid .cpsnap nor .cpsdelta: {e}"))
}

fn cmd_delta(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let action = options
        .positional
        .first()
        .ok_or("delta needs an action: build, inspect, apply, or compact")?;
    match action.as_str() {
        "build" => {
            let parent_path = options
                .positional
                .get(1)
                .ok_or("delta build needs a parent .cpsnap or .cpsdelta path")?;
            let out_path = options
                .positional
                .get(2)
                .ok_or("delta build needs an output .cpsdelta path")?;
            let parent = parent_state_id(parent_path)?;
            let batch = delta_batch(options.seed, options.records, options.serial);
            let bytes = build_delta(parent, &batch);
            let info = inspect_delta(&bytes).map_err(|e| format!("encode bug: {e}"))?;
            std::fs::write(out_path, &bytes)
                .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
            writeln!(
                out,
                "wrote {out_path}: {} bytes, {} records, parent {:016x} -> child {:016x}",
                bytes.len(),
                info.records(),
                info.parent_id,
                info.child_id
            )
            .map_err(|e| e.to_string())
        }
        "inspect" => {
            let path = options
                .positional
                .get(1)
                .ok_or("delta inspect needs a .cpsdelta file path")?;
            let bytes = read_snapshot(path)?;
            let info = inspect_delta(&bytes).map_err(|e| format!("invalid delta `{path}`: {e}"))?;
            if options.json {
                let artifact = render::Json::Object(vec![
                    ("path".into(), path.as_str().into()),
                    ("formatVersion".into(), f64::from(info.version).into()),
                    (
                        "parentId".into(),
                        format!("{:016x}", info.parent_id).as_str().into(),
                    ),
                    (
                        "childId".into(),
                        format!("{:016x}", info.child_id).as_str().into(),
                    ),
                    ("records".into(), info.records().into()),
                    ("patterns".into(), info.patterns.into()),
                    ("weaknesses".into(), info.weaknesses.into()),
                    ("vulnerabilities".into(), info.vulnerabilities.into()),
                    ("payloadBytes".into(), info.payload_len.into()),
                ]);
                return writeln!(out, "{}", artifact.to_text()).map_err(|e| e.to_string());
            }
            writeln!(
                out,
                "{path}: format version {}, parent {:016x} -> child {:016x}",
                info.version, info.parent_id, info.child_id
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "  {} records ({} patterns, {} weaknesses, {} vulnerabilities), {} payload bytes",
                info.records(),
                info.patterns,
                info.weaknesses,
                info.vulnerabilities,
                info.payload_len
            )
            .map_err(|e| e.to_string())
        }
        "apply" | "compact" => {
            let base_path = options
                .positional
                .get(1)
                .ok_or_else(|| format!("delta {action} needs a base .cpsnap path"))?;
            let delta_paths = &options.positional[2..];
            if delta_paths.is_empty() {
                return Err(format!(
                    "delta {action} needs at least one .cpsdelta file after the base"
                ));
            }
            let base_bytes = read_snapshot(base_path)?;
            let mut state = cpssec_search::snapshot::inspect(&base_bytes)
                .map_err(|e| format!("invalid snapshot `{base_path}`: {e}"))?
                .snapshot_id;
            let (mut corpus, mut engine) = cpssec_search::snapshot::decode(&base_bytes)
                .map_err(|e| format!("invalid snapshot `{base_path}`: {e}"))?;
            let mut applied = 0usize;
            for path in delta_paths {
                let delta_bytes = read_snapshot(path)?;
                let info = apply_delta(&mut corpus, &mut engine, &delta_bytes, state)
                    .map_err(|e| format!("cannot apply `{path}`: {e}"))?;
                state = info.child_id;
                applied += info.records();
            }
            // `compact` rebases the chain: the written snapshot is proven
            // byte-identical to a rebuild-from-scratch of the grown
            // corpus, and its snapshot id becomes the new chain anchor.
            let encoded = if action == "compact" {
                compact_verified(&corpus, &engine).map_err(|e| e.to_string())?
            } else {
                cpssec_search::snapshot::encode(&corpus, &engine)
            };
            let out_path = options.out_path.as_deref().unwrap_or(base_path);
            std::fs::write(out_path, &encoded)
                .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
            let stats = corpus.stats();
            let snapshot_id = cpssec_search::snapshot::inspect(&encoded)
                .map_err(|e| format!("encode bug: {e}"))?
                .snapshot_id;
            writeln!(
                out,
                "wrote {out_path}: {} bytes, {} records after {} delta(s) (+{applied}), snapshot id {snapshot_id:016x}",
                encoded.len(),
                stats.total(),
                delta_paths.len()
            )
            .map_err(|e| e.to_string())
        }
        other => Err(format!(
            "unknown delta action `{other}` (expected build, inspect, apply, or compact)"
        )),
    }
}

fn cmd_serve(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let state = match &options.snapshot_path {
        Some(path) => {
            // Zero-copy boot: the file becomes one shared buffer that is
            // validated in place, the server starts listening right away,
            // and the owned decode thaws on a background thread (corpus
            // endpoints block until it lands).
            let bytes: std::sync::Arc<[u8]> = read_snapshot(path)?.into();
            cpssec_server::AppState::from_snapshot_mapped(bytes)
                .map_err(|e| format!("invalid snapshot `{path}`: {e}"))?
        }
        None => cpssec_server::AppState::new(load_corpus(options)?),
    };
    // SLO config: --slo file wins over the CPSSEC_SLO env var.
    let slo_text = match &options.slo_path {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?)
        }
        None => std::env::var("CPSSEC_SLO").ok(),
    };
    let slo_routes = match slo_text {
        Some(text) => {
            let config = cpssec_obs::SloConfig::parse(&text)
                .map_err(|e| format!("invalid SLO config: {e}"))?;
            let routes = config.slos.len();
            state.telemetry.install_slo(config);
            routes
        }
        None => 0,
    };
    let mut server = cpssec_server::Server::bind(&options.addr, options.workers, state)
        .map_err(|e| format!("cannot bind `{}`: {e}", options.addr))?;
    if let Some(tick_ms) = options.tick_ms {
        server.set_tick_ms(tick_ms);
    }
    let addr = server
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    cpssec_server::signal::install(&server.shutdown_flag());
    writeln!(
        out,
        "listening on {addr} ({} workers, {} SLOs)",
        options.workers, slo_routes
    )
    .map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    let state = server.state();
    server.run().map_err(|e| format!("server error: {e}"))?;
    // Final telemetry snapshot after the drain — the trace ring flush
    // (--trace) happens in `run` once this command returns.
    let (cache_hits, cache_misses) = state.responses.stats();
    writeln!(
        out,
        "final snapshot: {} ticks, {} requests, {} slow, cache {cache_hits} hits / {cache_misses} misses",
        state.telemetry.ticks(),
        state.requests.recorded(),
        state.slow.observed(),
    )
    .map_err(|e| e.to_string())?;
    writeln!(out, "shutdown complete").map_err(|e| e.to_string())
}

fn cmd_load(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let report = cpssec_server::load::run(&cpssec_server::load::LoadConfig {
        addr: options.addr.clone(),
        clients: options.clients,
        requests: options.requests,
    });
    writeln!(out, "{}", report.summary()).map_err(|e| e.to_string())?;
    if report.errors > 0 {
        Err(format!("{} request(s) failed", report.errors))
    } else {
        Ok(())
    }
}

fn cmd_table1(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let corpus = load_corpus(options)?;
    let engine = SearchEngine::build(&corpus);
    let model = cpssec_scada::model::scada_model();
    let rows = attribute_rows(
        &model,
        &engine,
        &corpus,
        Fidelity::Implementation,
        &FilterPipeline::new(),
    );
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.attribute.clone(),
                r.patterns.to_string(),
                r.weaknesses.to_string(),
                r.vulnerabilities.to_string(),
            ]
        })
        .collect();
    write!(
        out,
        "{}",
        text_table(
            &[
                "Attribute",
                "Attack Patterns",
                "Weaknesses",
                "Vulnerabilities"
            ],
            &cells,
        )
    )
    .map_err(|e| e.to_string())
}

fn load_model(path: &str) -> Result<SystemModel, String> {
    let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    cpssec_model::from_graphml(&xml).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

fn cmd_associate(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let path = options
        .positional
        .first()
        .ok_or("associate needs a GraphML model path (or `scada` for the built-in model)")?;
    let model = if path == "scada" {
        cpssec_scada::model::scada_model()
    } else {
        load_model(path)?
    };
    let corpus = load_corpus(options)?;
    let engine = SearchEngine::build(&corpus);
    let mut filters = FilterPipeline::new();
    if let Some(top) = options.top {
        filters = filters.then(cpssec_search::Filter::TopKPerFamily(top));
    }
    let map = AssociationMap::build(&model, &engine, &corpus, options.fidelity, &filters);
    let cells: Vec<Vec<String>> = map
        .iter()
        .map(|(component, matches)| {
            let (p, w, v) = matches.counts();
            vec![
                component.to_owned(),
                p.to_string(),
                w.to_string(),
                v.to_string(),
            ]
        })
        .collect();
    write!(
        out,
        "{}",
        text_table(
            &["Component", "Patterns", "Weaknesses", "Vulnerabilities"],
            &cells
        )
    )
    .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "total: {} associated vectors at {} fidelity",
        map.total_vectors(),
        options.fidelity
    )
    .map_err(|e| e.to_string())
}

fn cmd_figure(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let corpus = load_corpus(options)?;
    let engine = SearchEngine::build(&corpus);
    let model = cpssec_scada::model::scada_model();
    let map = AssociationMap::build(
        &model,
        &engine,
        &corpus,
        Fidelity::Implementation,
        &FilterPipeline::new(),
    );
    write!(out, "{}", render::model_dot(&model, Some(&map))).map_err(|e| e.to_string())
}

fn cmd_report(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let corpus = load_corpus(options)?;
    let engine = SearchEngine::build(&corpus);
    let model = cpssec_scada::model::scada_model();
    let filters = FilterPipeline::new();
    let association =
        AssociationMap::build(&model, &engine, &corpus, Fidelity::Implementation, &filters);
    let rows = attribute_rows(&model, &engine, &corpus, Fidelity::Implementation, &filters);
    let posture = SystemPosture::compute(&model, &corpus, &association);
    let consequences = if options.simulate {
        standard_analysis(&corpus, &engine, Fidelity::Implementation, options.ticks)
    } else {
        Vec::new()
    };
    let markdown = report::render_report(&report::ReportInput {
        model: &model,
        corpus: &corpus,
        association: &association,
        attribute_rows: &rows,
        posture: &posture,
        consequences: &consequences,
    });
    write!(out, "{markdown}").map_err(|e| e.to_string())
}

fn print_batch(report: &BatchReport, out: &mut dyn Write) -> Result<(), String> {
    writeln!(out, "product:            {}", report.product).map_err(|e| e.to_string())?;
    writeln!(out, "emergency stop:     {}", report.emergency_stopped).map_err(|e| e.to_string())?;
    writeln!(out, "exploded:           {}", report.exploded).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "max temperature:    {:.1} °C",
        report.max_temperature_c
    )
    .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "max speed deviation: {:.2} rpm",
        report.max_speed_deviation_rpm
    )
    .map_err(|e| e.to_string())?;
    for hazard in &report.hazards {
        writeln!(out, "hazard: {hazard}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn cmd_simulate(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let name = options
        .positional
        .first()
        .ok_or("simulate needs a scenario name (see `cpssec scenarios`)")?;
    let config = ScadaConfig::default();
    let report = if name == "nominal" {
        ScadaHarness::new(config).run_batch_for(options.ticks)
    } else if let Some(attack) = attacks::all_scenarios()
        .into_iter()
        .find(|s| &s.name == name)
    {
        ScadaHarness::with_attack(config, &attack).run_batch_for(options.ticks)
    } else if let Some(fault) = faults::all_fault_scenarios()
        .into_iter()
        .find(|s| &s.name == name)
    {
        ScadaHarness::with_fault(config, &fault).run_batch_for(options.ticks)
    } else {
        return Err(format!(
            "unknown scenario `{name}` (see `cpssec scenarios`)"
        ));
    };
    writeln!(out, "scenario: {name} ({} ticks)", options.ticks).map_err(|e| e.to_string())?;
    print_batch(&report, out)
}

/// `cpssec fleet`: a Monte-Carlo attack campaign over the centrifuge.
///
/// Records (and therefore the aggregate hash) are a pure function of
/// `(--seed, --scenarios, --ticks, --classes)` — `--threads` only changes
/// the wall clock, never the statistics.
fn cmd_fleet(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let mut spec = CampaignSpec::new(options.scenarios, options.seed);
    spec.max_ticks = options.ticks;
    if let Some(threads) = options.threads {
        spec.threads = threads;
    }
    if let Some(raw) = &options.classes {
        let mut classes = Vec::new();
        for name in raw.split(',').filter(|s| !s.is_empty()) {
            classes.push(
                AttackClass::parse(name).ok_or_else(|| format!("unknown attack class `{name}`"))?,
            );
        }
        if classes.is_empty() {
            return Err("--classes needs at least one class name".into());
        }
        spec.classes = classes;
    }

    let started = std::time::Instant::now();
    let records = run_campaign(&spec);
    let elapsed = started.elapsed().as_secs_f64();
    let aggregate = cpssec_analysis::aggregate(&records);
    if options.json {
        return writeln!(
            out,
            "{}",
            cpssec_analysis::aggregate_json(&aggregate).to_text()
        )
        .map_err(|e| e.to_string());
    }
    write!(out, "{}", cpssec_analysis::aggregate_table(&aggregate)).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "{} scenarios in {elapsed:.2}s ({:.1}/s, {} threads)",
        spec.scenarios,
        spec.scenarios as f64 / elapsed.max(1e-9),
        spec.threads
    )
    .map_err(|e| e.to_string())?;
    writeln!(out, "aggregate hash: {:016x}", aggregate.records_hash).map_err(|e| e.to_string())
}

/// `cpssec campaign`: executes every exploit chain matched against a
/// testbed model as a multi-stage attack campaign and reports the
/// per-chain verdicts.
///
/// Records (and therefore the records hash) are a pure function of
/// `(testbed, --seed)` — `--threads` only changes the wall clock.
fn cmd_campaign(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let name = options
        .positional
        .first()
        .ok_or("campaign needs a testbed: scada or water")?;
    let testbed = cpssec_campaign::Testbed::parse(name)
        .ok_or_else(|| format!("unknown testbed `{name}` (expected scada or water)"))?;
    let mut run = cpssec_campaign::CampaignRun::new(testbed, options.seed);
    if let Some(threads) = options.threads {
        run.threads = threads;
    }

    let started = std::time::Instant::now();
    let records = cpssec_campaign::run_campaign(&run);
    let elapsed = started.elapsed().as_secs_f64();
    if options.csv {
        return write!(out, "{}", cpssec_analysis::campaign_csv(&records))
            .map_err(|e| e.to_string());
    }
    let aggregate = cpssec_analysis::campaign_aggregate(testbed.as_str(), &records);
    if options.json {
        return writeln!(
            out,
            "{}",
            cpssec_analysis::campaign_json(&aggregate).to_text()
        )
        .map_err(|e| e.to_string());
    }
    write!(out, "{}", cpssec_analysis::campaign_table(&aggregate)).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "{} chains in {elapsed:.2}s ({} reached hazard, {} contained, {} textual-only, {} threads)",
        aggregate.chains, aggregate.reached, aggregate.contained, aggregate.textual, run.threads
    )
    .map_err(|e| e.to_string())?;
    writeln!(out, "records hash: {:016x}", aggregate.records_hash).map_err(|e| e.to_string())
}

fn cmd_scenarios(out: &mut dyn Write) -> Result<(), String> {
    writeln!(out, "attack scenarios:").map_err(|e| e.to_string())?;
    for scenario in attacks::all_scenarios() {
        writeln!(
            out,
            "  {:<32} [{} / {}] -> {}",
            scenario.name,
            scenario.weakness_ids.join(","),
            scenario.pattern_ids.join(","),
            scenario.target_component
        )
        .map_err(|e| e.to_string())?;
    }
    writeln!(out, "fault scenarios:").map_err(|e| e.to_string())?;
    for scenario in faults::all_fault_scenarios() {
        writeln!(out, "  {:<32} {}", scenario.name, scenario.description)
            .map_err(|e| e.to_string())?;
    }
    writeln!(out, "plus: nominal").map_err(|e| e.to_string())
}

fn cmd_export_model(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let model = cpssec_scada::model::scada_model().at_fidelity(options.fidelity);
    write!(out, "{}", cpssec_model::to_graphml(&model)).map_err(|e| e.to_string())
}

fn cmd_export_corpus(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let corpus = load_corpus(options)?;
    write!(out, "{}", cpssec_attackdb::jsonl::to_jsonl(&corpus)).map_err(|e| e.to_string())
}

fn cmd_json(options: &Options, out: &mut dyn Write) -> Result<(), String> {
    let corpus = load_corpus(options)?;
    let engine = SearchEngine::build(&corpus);
    let model = cpssec_scada::model::scada_model();
    let map = AssociationMap::build(
        &model,
        &engine,
        &corpus,
        options.fidelity,
        &FilterPipeline::new(),
    );
    let posture = SystemPosture::compute(&model, &corpus, &map);
    let artifact = render::association_json(&model, &map, &posture);
    writeln!(out, "{}", artifact.to_text()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::json::JsonValue;

    fn run_capture(args: &[&str]) -> Result<String, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        let mut buffer = Vec::new();
        run(&owned, &mut buffer)?;
        Ok(String::from_utf8(buffer).expect("utf8 output"))
    }

    #[test]
    fn parse_defaults_and_flags() {
        let options = parse_options(&[]).unwrap();
        assert_eq!(options.scale, 0.05);
        assert_eq!(options.fidelity, Fidelity::Implementation);

        let options = parse_options(
            &[
                "--scale",
                "0.2",
                "--fidelity",
                "conceptual",
                "--top",
                "5",
                "--simulate",
                "pos",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(options.scale, 0.2);
        assert_eq!(options.fidelity, Fidelity::Conceptual);
        assert_eq!(options.top, Some(5));
        assert!(options.simulate);
        assert_eq!(options.positional, ["pos"]);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_options(&["--scale".into()]).is_err());
        assert!(parse_options(&["--scale".into(), "x".into()]).is_err());
        assert!(parse_options(&["--scale".into(), "0".into()]).is_err());
        assert!(parse_options(&["--fidelity".into(), "exact".into()]).is_err());
        assert!(parse_options(&["--bogus".into()]).is_err());
    }

    #[test]
    fn unknown_command_fails_on_one_line() {
        let err = run_capture(&["frobnicate"]).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(err.contains("cpssec help"));
        assert_eq!(err.lines().count(), 1, "error must be one line: {err:?}");
    }

    #[test]
    fn help_prints_usage() {
        let output = run_capture(&["help"]).unwrap();
        assert!(output.contains("cpssec table1"));
    }

    #[test]
    fn table1_prints_all_six_attributes() {
        let output = run_capture(&["table1", "--scale", "0.01"]).unwrap();
        for attribute in [
            "Cisco ASA",
            "NI RT Linux OS",
            "Windows 7",
            "Labview",
            "NI cRIO 9063",
        ] {
            assert!(output.contains(attribute), "missing {attribute}");
        }
    }

    #[test]
    fn scenarios_lists_attacks_and_faults() {
        let output = run_capture(&["scenarios"]).unwrap();
        assert!(output.contains("bpcs-command-injection"));
        assert!(output.contains("chiller-degradation"));
        assert!(output.contains("nominal"));
    }

    #[test]
    fn simulate_nominal_reports_nominal() {
        let output = run_capture(&["simulate", "nominal", "--ticks", "4010"]).unwrap();
        assert!(output.contains("product:            nominal"));
    }

    #[test]
    fn simulate_attack_by_name() {
        let output = run_capture(&["simulate", "setpoint-tamper", "--ticks", "4010"]).unwrap();
        assert!(output.contains("ruined-speed"));
    }

    #[test]
    fn simulate_fault_by_name() {
        let output = run_capture(&["simulate", "chiller-degradation", "--ticks", "12000"]).unwrap();
        assert!(output.contains("emergency stop:     true"));
    }

    #[test]
    fn simulate_unknown_scenario_fails() {
        assert!(run_capture(&["simulate", "ghost"])
            .unwrap_err()
            .contains("unknown scenario"));
    }

    #[test]
    fn parse_fleet_flags() {
        let options = parse_options(
            &[
                "--scenarios",
                "50",
                "--seed",
                "9",
                "--threads",
                "3",
                "--classes",
                "nominal",
                "--json",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(options.scenarios, 50);
        assert_eq!(options.seed, 9);
        assert_eq!(options.threads, Some(3));
        assert_eq!(options.classes.as_deref(), Some("nominal"));
        assert!(options.json);
        assert!(parse_options(&["--scenarios".into(), "0".into()]).is_err());
        assert!(parse_options(&["--threads".into(), "0".into()]).is_err());
        assert!(parse_options(&["--seed".into(), "x".into()]).is_err());
    }

    fn hash_line(output: &str) -> String {
        output
            .lines()
            .find(|l| l.starts_with("aggregate hash: ") || l.starts_with("records hash: "))
            .expect("hash line present")
            .to_owned()
    }

    #[test]
    fn campaign_hash_is_thread_count_independent() {
        let args = |threads: &'static str| vec!["campaign", "water", "--threads", threads];
        let two = run_capture(&args("2")).unwrap();
        assert!(two.contains("reached-hazard"), "{two}");
        assert!(two.contains("dosing interlock"), "{two}");
        let one = run_capture(&args("1")).unwrap();
        assert_eq!(hash_line(&two), hash_line(&one));
    }

    #[test]
    fn campaign_json_emits_the_verdict_artifact() {
        let output = run_capture(&["campaign", "scada", "--json"]).unwrap();
        let value = cpssec_attackdb::json::parse(output.trim()).expect("valid json");
        assert!(value.get("recordsHash").is_some());
        assert_eq!(
            value.get("testbed").and_then(JsonValue::as_str),
            Some("scada")
        );
        assert!(value.get("reachedHazard").is_some());
    }

    #[test]
    fn campaign_csv_lists_every_chain() {
        let output = run_capture(&["campaign", "scada", "--csv"]).unwrap();
        assert!(output.starts_with("index,seed,chain,"));
        assert!(output.contains("sis-disable-command-injection"));
        assert!(output.contains("textual-only"));
    }

    #[test]
    fn campaign_rejects_unknown_testbeds() {
        let err = run_capture(&["campaign", "gasworks"]).unwrap_err();
        assert!(err.contains("unknown testbed"));
        let err = run_capture(&["campaign"]).unwrap_err();
        assert!(err.contains("needs a testbed"));
    }

    #[test]
    fn fleet_hash_is_thread_count_independent() {
        let args = |threads: &'static str| {
            vec![
                "fleet",
                "--scenarios",
                "6",
                "--seed",
                "9",
                "--ticks",
                "1500",
                "--threads",
                threads,
            ]
        };
        let two = run_capture(&args("2")).unwrap();
        assert!(two.contains("P(hazard)"), "{two}");
        assert!(two.contains("6 scenarios in"), "{two}");
        let one = run_capture(&args("1")).unwrap();
        assert_eq!(hash_line(&two), hash_line(&one));
    }

    #[test]
    fn fleet_json_emits_the_aggregate_artifact() {
        let output = run_capture(&[
            "fleet",
            "--scenarios",
            "4",
            "--seed",
            "3",
            "--ticks",
            "1500",
            "--json",
        ])
        .unwrap();
        let value = cpssec_attackdb::json::parse(output.trim()).expect("valid json");
        assert!(value.get("recordsHash").is_some());
        assert_eq!(
            value.get("scenarios"),
            Some(&cpssec_attackdb::json::JsonValue::Number(4.0))
        );
    }

    #[test]
    fn fleet_restricts_classes_and_rejects_unknown_ones() {
        let output = run_capture(&[
            "fleet",
            "--scenarios",
            "3",
            "--ticks",
            "1200",
            "--classes",
            "nominal",
        ])
        .unwrap();
        assert!(output.contains("nominal"), "{output}");
        assert!(!output.contains("command-injection"), "{output}");
        let err = run_capture(&["fleet", "--classes", "quantum"]).unwrap_err();
        assert!(err.contains("quantum"));
        let err = run_capture(&["fleet", "--classes", ","]).unwrap_err();
        assert!(err.contains("at least one class"));
    }

    #[test]
    fn export_model_then_associate_round_trips() {
        let xml = run_capture(&["export-model"]).unwrap();
        let dir = std::env::temp_dir().join("cpssec-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.graphml");
        std::fs::write(&path, xml).unwrap();
        let output = run_capture(&[
            "associate",
            path.to_str().unwrap(),
            "--scale",
            "0.01",
            "--top",
            "3",
        ])
        .unwrap();
        assert!(output.contains("SIS platform"));
        assert!(output.contains("total:"));
    }

    #[test]
    fn figure_emits_dot() {
        let output = run_capture(&["figure", "--scale", "0.01"]).unwrap();
        assert!(output.starts_with("graph"));
        assert!(output.contains("CVE"));
    }

    #[test]
    fn report_contains_sections_and_simulation_is_optional() {
        let output = run_capture(&["report", "--scale", "0.01"]).unwrap();
        assert!(output.contains("# Security analysis report"));
        assert!(!output.contains("## Simulated consequences"));
    }

    #[test]
    fn associate_requires_a_path() {
        assert!(run_capture(&["associate"]).unwrap_err().contains("GraphML"));
    }

    #[test]
    fn associate_scada_uses_the_builtin_model() {
        let output = run_capture(&["associate", "scada", "--scale", "0.01", "--top", "3"]).unwrap();
        assert!(output.contains("SIS platform"));
        assert!(output.contains("total:"));
    }

    #[test]
    fn trace_flag_writes_a_chrome_trace() {
        let dir = std::env::temp_dir().join("cpssec-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit-trace.json");
        let path_str = path.to_str().unwrap().to_owned();
        run_capture(&[
            "associate",
            "scada",
            "--scale",
            "0.01",
            "--trace",
            &path_str,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let value = cpssec_attackdb::json::parse(&text).expect("trace is valid json");
        let events = value.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty(), "trace should contain span events");
        for event in events {
            assert_eq!(event.get("ph").unwrap().as_str(), Some("X"));
            assert!(event.get("ts").is_some());
            assert!(event.get("dur").is_some());
        }
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
            .collect();
        assert!(names.contains(&"associate"), "stages seen: {names:?}");
        assert!(names.contains(&"score"), "stages seen: {names:?}");
    }

    #[test]
    fn parse_trace_flag() {
        let options = parse_options(&["--trace".into(), "out.json".into()]).unwrap();
        assert_eq!(options.trace_path.as_deref(), Some("out.json"));
        assert!(parse_options(&["--trace".into()]).is_err());
    }

    #[test]
    fn export_corpus_round_trips_through_corpus_flag() {
        let jsonl = run_capture(&["export-corpus", "--scale", "0.01"]).unwrap();
        let dir = std::env::temp_dir().join("cpssec-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.jsonl");
        std::fs::write(&path, &jsonl).unwrap();
        let output = run_capture(&["table1", "--corpus", path.to_str().unwrap()]).unwrap();
        assert!(output.contains("Cisco ASA"));
        // Same corpus either way: identical table.
        let direct = run_capture(&["table1", "--scale", "0.01"]).unwrap();
        assert_eq!(output, direct);
    }

    #[test]
    fn json_emits_a_parsable_dashboard_artifact() {
        let output = run_capture(&["json", "--scale", "0.01"]).unwrap();
        let value = cpssec_attackdb::json::parse(output.trim()).expect("valid json");
        assert!(value.get("systemScore").is_some());
        assert!(value.get("components").unwrap().as_array().unwrap().len() == 8);
    }

    #[test]
    fn corpus_flag_with_missing_file_fails() {
        let err = run_capture(&["table1", "--corpus", "/nonexistent/corpus.jsonl"]).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn parse_delta_flags() {
        let options = parse_options(
            &["--records", "500", "--serial", "2", "--out", "x.cpsnap"].map(String::from),
        )
        .unwrap();
        assert_eq!(options.records, 500);
        assert_eq!(options.serial, 2);
        assert_eq!(options.out_path.as_deref(), Some("x.cpsnap"));
        assert!(parse_options(&["--records".into(), "0".into()]).is_err());
        assert!(parse_options(&["--records".into(), "10001".into()]).is_err());
        assert!(parse_options(&["--serial".into(), "-1".into()]).is_err());
        assert!(parse_options(&["--out".into()]).is_err());
    }

    #[test]
    fn delta_usage_errors_are_one_line() {
        for (args, needle) in [
            (vec!["delta"], "needs an action"),
            (vec!["delta", "refry", "x"], "unknown delta action"),
            (vec!["delta", "build"], "needs a parent"),
            (vec!["delta", "apply", "base.cpsnap"], "at least one"),
            (vec!["delta", "inspect"], "needs a .cpsdelta"),
        ] {
            let err = run_capture(&args).unwrap_err();
            assert!(err.contains(needle), "{args:?}: {err}");
            assert_eq!(err.lines().count(), 1, "{args:?}: {err:?}");
        }
    }

    #[test]
    fn snapshot_inspect_emits_offsets_and_json() {
        let dir = std::env::temp_dir().join("cpssec-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inspect.cpsnap");
        let path = path.to_str().unwrap().to_owned();
        run_capture(&["snapshot", "build", &path, "--scale", "0.01"]).unwrap();

        let text = run_capture(&["snapshot", "inspect", &path]).unwrap();
        assert!(text.contains("snapshot id"), "{text}");
        assert!(text.contains("offset"), "{text}");

        let json = run_capture(&["snapshot", "inspect", &path, "--json"]).unwrap();
        let value = cpssec_attackdb::json::parse(json.trim()).expect("valid json");
        assert_eq!(value.get("formatVersion"), Some(&JsonValue::Number(2.0)));
        let sections = value.get("sections").unwrap().as_array().unwrap();
        assert_eq!(sections.len(), 4);
        for section in sections {
            assert!(section.get("offset").is_some(), "{section:?}");
            assert!(section.get("checksum").is_some(), "{section:?}");
        }
        // The text and JSON outputs agree on the snapshot id.
        let id = value.get("snapshotId").and_then(JsonValue::as_str).unwrap();
        assert!(text.contains(id), "{id} not in {text}");
    }

    #[test]
    fn delta_build_apply_compact_round_trip() {
        let dir = std::env::temp_dir().join("cpssec-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path_of = |name: &str| dir.join(name).to_str().unwrap().to_owned();
        let base = path_of("delta-base.cpsnap");
        run_capture(&["snapshot", "build", &base, "--scale", "0.01"]).unwrap();

        let d0 = path_of("chain-0.cpsdelta");
        let out = run_capture(&[
            "delta",
            "build",
            &base,
            &d0,
            "--records",
            "40",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(out.contains("40 records"), "{out}");

        // A second delta chains onto the first delta *file* directly.
        let d1 = path_of("chain-1.cpsdelta");
        run_capture(&[
            "delta",
            "build",
            &d0,
            &d1,
            "--records",
            "40",
            "--seed",
            "5",
            "--serial",
            "1",
        ])
        .unwrap();
        let json = run_capture(&["delta", "inspect", &d1, "--json"]).unwrap();
        let value = cpssec_attackdb::json::parse(json.trim()).expect("valid json");
        assert_eq!(value.get("records"), Some(&JsonValue::Number(40.0)));

        // Apply both; the grown snapshot verifies clean.
        let grown = path_of("delta-grown.cpsnap");
        let out = run_capture(&["delta", "apply", &base, &d0, &d1, "--out", &grown]).unwrap();
        assert!(out.contains("+80"), "{out}");
        let check = run_capture(&["snapshot", "verify", &grown]).unwrap();
        assert!(check.starts_with("ok: "), "{check}");

        // Compaction is proven byte-identical to rebuild-from-scratch,
        // and the canonical encoder makes apply's output match it too.
        let compacted = path_of("delta-compacted.cpsnap");
        run_capture(&["delta", "compact", &base, &d0, &d1, "--out", &compacted]).unwrap();
        assert_eq!(
            std::fs::read(&grown).unwrap(),
            std::fs::read(&compacted).unwrap()
        );

        // Skipping a link in the chain is a parent mismatch.
        let err = run_capture(&["delta", "apply", &base, &d1, "--out", &grown]).unwrap_err();
        assert!(err.contains("parent"), "{err}");
    }
}
