//! `cpssec` — the command-line face of the toolchain.
//!
//! ```text
//! cpssec table1 [--scale S]                    regenerate the paper's Table 1
//! cpssec associate <model.graphml> [options]   match a model against the corpus
//! cpssec figure [--scale S]                    Figure 1 as Graphviz DOT
//! cpssec report [--scale S] [--simulate]       full Markdown analyst report
//! cpssec simulate <scenario> [--ticks N]       run an attack/fault in the plant
//! cpssec scenarios                             list built-in scenarios
//! cpssec export-model [--fidelity LEVEL]       emit the SCADA model as GraphML
//! cpssec serve [--addr A] [--workers N]        run the concurrent analysis service
//! cpssec load [--addr A] [--clients N] [--requests M]   drive a running service
//! ```

mod cli;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("cpssec: {message}");
            ExitCode::FAILURE
        }
    }
}
