//! Quickstart: model a tiny control system, associate attack vectors,
//! inspect the result.
//!
//! Run with `cargo run --example quickstart`.

use cpssec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A system model in the general architectural form — here built
    //    directly; in practice exported from a modeling language.
    let model = SystemModelBuilder::new("pump-skid")
        .component_with("engineering laptop", ComponentKind::Workstation, |c| {
            c.with_entry_point(true)
                .with_attribute(Attribute::new(AttributeKind::OperatingSystem, "Windows 7"))
        })
        .component_with("pump controller", ComponentKind::Controller, |c| {
            c.with_criticality(Criticality::SafetyCritical)
                .with_attribute(Attribute::new(AttributeKind::Hardware, "NI cRIO 9063"))
                .with_attribute(Attribute::new(
                    AttributeKind::OperatingSystem,
                    "NI RT Linux OS",
                ))
        })
        .component("pump", ComponentKind::Actuator)
        .channel(
            "engineering laptop",
            "pump controller",
            ChannelKind::Ethernet,
        )
        .channel("pump controller", "pump", ChannelKind::Analog)
        .build()?;

    // 2. Attack vector data: the curated seed corpus (CAPEC/CWE/CVE shaped).
    let corpus = cpssec::attackdb::seed::seed_corpus();

    // 3. Associate and analyze.
    let mut dashboard = Dashboard::new(corpus, model);

    println!("== Association (per component) ==");
    for (component, matches) in dashboard.association().iter() {
        let (p, w, v) = matches.counts();
        println!("{component:24} {p:3} patterns  {w:3} weaknesses  {v:4} vulnerabilities");
    }

    println!("\n== Attribute view (Table 1 style) ==");
    print!("{}", dashboard.table_text());

    println!("\n== Posture (lower is better) ==");
    let posture = dashboard.posture();
    for component in &posture.components {
        println!(
            "{:24} criticality={:16} score={:.2}",
            component.component,
            component.criticality.to_string(),
            component.score
        );
    }
    println!("total: {:.2}", posture.total_score);

    // 4. What-if: does dropping Windows 7 for a hardened image help?
    let report = dashboard.what_if(&[cpssec::analysis::whatif::ModelChange::ReplaceAttribute {
        component: "engineering laptop".into(),
        key: "os".into(),
        with: Attribute::new(AttributeKind::OperatingSystem, "hardened thin client"),
    }])?;
    println!(
        "\nwhat-if: replace Windows 7 -> hardened thin client: Δscore = {:+.2} ({})",
        report.score_delta,
        if report.is_improvement() {
            "improvement"
        } else {
            "regression"
        }
    );
    Ok(())
}
