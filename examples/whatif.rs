//! What-if architecture comparison (the dashboard workflow of §3):
//! evaluate alternative designs by their association footprint.
//!
//! Run with `cargo run --example whatif`.

use cpssec::analysis::whatif::ModelChange;
use cpssec::attackdb::seed::seed_corpus;
use cpssec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dashboard = Dashboard::new(seed_corpus(), cpssec::scada::model::scada_model());

    let alternatives: Vec<(&str, Vec<ModelChange>)> = vec![
        (
            "harden workstation (drop Windows 7 + LabVIEW)",
            vec![
                ModelChange::ReplaceAttribute {
                    component: "Programming WS".into(),
                    key: "os".into(),
                    with: Attribute::new(AttributeKind::OperatingSystem, "hardened thin client")
                        .at_fidelity(Fidelity::Implementation),
                },
                ModelChange::RemoveAttribute {
                    component: "Programming WS".into(),
                    key: "software".into(),
                    value: "Labview".into(),
                },
            ],
        ),
        (
            "swap SIS platform to a dedicated safety PLC",
            vec![ModelChange::ReplaceAttribute {
                component: "SIS platform".into(),
                key: "hardware".into(),
                with: Attribute::new(AttributeKind::Hardware, "dedicated safety PLC")
                    .at_fidelity(Fidelity::Implementation),
            }],
        ),
        (
            "add a historian running Windows 7 software to the BPCS",
            vec![ModelChange::AddAttribute {
                component: "BPCS platform".into(),
                attribute: Attribute::new(AttributeKind::Software, "Windows 7 historian client")
                    .at_fidelity(Fidelity::Implementation),
            }],
        ),
    ];

    println!("baseline posture and what-if deltas (lower score = better posture):\n");
    for (label, changes) in alternatives {
        let report = dashboard.what_if(&changes)?;
        println!(
            "{label}\n  score {:.2} -> {:.2}  (Δ {:+.2}, {})",
            report.before.total_score,
            report.after.total_score,
            report.score_delta,
            if report.is_improvement() {
                "better posture"
            } else {
                "worse posture"
            }
        );
        for change in &report.diff.changed_components {
            println!("  changed: {}", change.name);
        }
        println!();
    }
    Ok(())
}
