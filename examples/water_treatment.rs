//! A second domain: the water-treatment testbed, now first-class.
//!
//! The centrifuge is the paper's demonstration; this example shows the
//! toolchain on a different system to make the point that nothing is
//! centrifuge-specific. The model and the running simulation behind it
//! were promoted into `cpssec_scada::water` — this wrapper just drives
//! the §2 workflow (associate, rank, enumerate attack paths) over the
//! promoted model and runs one nominal batch of the physics.
//!
//! Run with `cargo run --example water_treatment`.

use cpssec::analysis::render::text_table;
use cpssec::analysis::surface::attack_surface;
use cpssec::attackdb::seed::seed_corpus;
use cpssec::prelude::*;
use cpssec::scada::water::{water_model, WaterConfig, WaterHarness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = water_model();
    let mut dashboard = Dashboard::new(seed_corpus(), model);

    println!("== Association ==");
    let rows: Vec<Vec<String>> = dashboard
        .association()
        .iter()
        .map(|(component, matches)| {
            let (p, w, v) = matches.counts();
            vec![
                component.to_owned(),
                p.to_string(),
                w.to_string(),
                v.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        text_table(
            &["Component", "Patterns", "Weaknesses", "Vulnerabilities"],
            &rows
        )
    );

    println!("\n== Attack surface ==");
    let surface = attack_surface(dashboard.model(), Criticality::SafetyCritical, 6);
    println!("exposure: {:.2}", surface.exposure);
    for path in surface.paths.iter().take(3) {
        println!("  {}", path.components.join(" -> "));
    }

    println!("\n== Posture ==");
    let posture = dashboard.posture();
    for component in &posture.components {
        if component.score > 0.0 {
            println!("  {:<20} {:.1}", component.component, component.score);
        }
    }

    // The promoted testbed is executable, not just a diagram: run one
    // nominal batch and report the residual-chlorine outcome.
    println!("\n== Nominal batch (simulated) ==");
    let mut harness = WaterHarness::new(WaterConfig::default());
    let report = harness.run_batch();
    println!(
        "quality: {}  residual window: [{:.2}, {:.2}] mg/L  hazards: {}",
        report.quality,
        report.window_min_mg_l,
        report.window_max_mg_l,
        report.hazards.len()
    );
    Ok(())
}
