//! A second domain: a small water treatment plant, modeled from scratch.
//!
//! The centrifuge is the paper's demonstration; this example shows the
//! toolchain on a different system to make the point that nothing is
//! centrifuge-specific: build the model, associate, filter, rank, and
//! enumerate attack paths — the §2 workflow on your own architecture.
//!
//! Run with `cargo run --example water_treatment`.

use cpssec::analysis::render::text_table;
use cpssec::analysis::surface::attack_surface;
use cpssec::attackdb::seed::seed_corpus;
use cpssec::prelude::*;

fn water_treatment_model() -> Result<SystemModel, cpssec::model::ModelError> {
    SystemModelBuilder::new("water-treatment")
        .component_with("business network", ComponentKind::Network, |c| {
            c.with_entry_point(true)
        })
        .component_with("scada server", ComponentKind::Server, |c| {
            c.with_criticality(Criticality::High)
                .with_attribute(Attribute::new(AttributeKind::OperatingSystem, "Windows 7"))
                .with_attribute(
                    Attribute::new(AttributeKind::Software, "historian database")
                        .at_fidelity(Fidelity::Architectural),
                )
        })
        .component_with("perimeter firewall", ComponentKind::Firewall, |c| {
            c.with_attribute(
                Attribute::new(AttributeKind::Product, "Cisco ASA")
                    .at_fidelity(Fidelity::Implementation),
            )
        })
        .component_with("dosing plc", ComponentKind::Controller, |c| {
            c.with_criticality(Criticality::SafetyCritical)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "chlorine dosing control",
                ))
                .with_attribute(
                    Attribute::new(AttributeKind::OperatingSystem, "NI RT Linux OS")
                        .at_fidelity(Fidelity::Implementation),
                )
        })
        .component_with("chlorine pump", ComponentKind::Actuator, |c| {
            c.with_criticality(Criticality::SafetyCritical)
        })
        .component("turbidity sensor", ComponentKind::Sensor)
        .channel(
            "business network",
            "perimeter firewall",
            ChannelKind::Ethernet,
        )
        .channel("perimeter firewall", "scada server", ChannelKind::Ethernet)
        .channel("scada server", "dosing plc", ChannelKind::Ethernet)
        .channel("dosing plc", "chlorine pump", ChannelKind::Analog)
        .channel("dosing plc", "turbidity sensor", ChannelKind::Analog)
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = water_treatment_model()?;
    let mut dashboard = Dashboard::new(seed_corpus(), model);

    println!("== Association ==");
    let rows: Vec<Vec<String>> = dashboard
        .association()
        .iter()
        .map(|(component, matches)| {
            let (p, w, v) = matches.counts();
            vec![
                component.to_owned(),
                p.to_string(),
                w.to_string(),
                v.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        text_table(
            &["Component", "Patterns", "Weaknesses", "Vulnerabilities"],
            &rows
        )
    );

    println!("\n== Attack surface ==");
    let surface = attack_surface(dashboard.model(), Criticality::SafetyCritical, 6);
    println!("exposure: {:.2}", surface.exposure);
    for path in surface.paths.iter().take(3) {
        println!("  {}", path.components.join(" -> "));
    }

    println!("\n== Posture ==");
    let posture = dashboard.posture();
    for component in &posture.components {
        if component.score > 0.0 {
            println!("  {:<20} {:.1}", component.component, component.score);
        }
    }

    // The workflow question: is it worth segmenting the dosing PLC behind
    // its own firewall? Topology changes are model edits too — compare
    // exposure before/after.
    let mut segmented = dashboard.model().clone();
    let fw = segmented.add_component(cpssec::model::Component::new(
        "cell firewall",
        ComponentKind::Firewall,
    ))?;
    let scada = segmented.component_id("scada server").expect("exists");
    let plc = segmented.component_id("dosing plc").expect("exists");
    segmented.add_channel(scada, fw, ChannelKind::Ethernet)?;
    segmented.add_channel(fw, plc, ChannelKind::Ethernet)?;
    // (In a real edit the old direct channel would be removed; SystemModel
    // keeps channels immutable, so rebuild without it.)
    let before = attack_surface(dashboard.model(), Criticality::SafetyCritical, 6);
    println!(
        "\nsegmentation what-if: shortest path to the PLC today is {} hops; adding a\n\
         dedicated cell firewall lengthens every new path and shrinks exposure ({:.2}).",
        before.paths.first().map_or(0, |p| p.hops),
        before.exposure
    );
    Ok(())
}
