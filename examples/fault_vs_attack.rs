//! Fault vs. attack: the paper's point that undesired physical consequences
//! are "the primary loss we mitigate against regardless of the nature of
//! its origin (intrinsic safety fault or attack)".
//!
//! Runs intrinsic fault scenarios and their adversarial twins through the
//! same harness and compares outcomes.
//!
//! Run with `cargo run --release --example fault_vs_attack`.

use cpssec::analysis::render::text_table;
use cpssec::prelude::*;
use cpssec::scada::{attacks, faults, BatchReport};
use cpssec::sim::Tick;

fn outcome(report: &BatchReport) -> Vec<String> {
    vec![
        report.product.to_string(),
        if report.emergency_stopped {
            "yes"
        } else {
            "no"
        }
        .to_owned(),
        if report.exploded { "yes" } else { "no" }.to_owned(),
        report
            .hazards
            .iter()
            .map(|h| h.hazard.clone())
            .collect::<Vec<_>>()
            .join(" "),
    ]
}

fn main() {
    let pairs: Vec<(&str, BatchReport, &str, BatchReport)> = vec![
        (
            "stuck-temperature-probe (fault)",
            ScadaHarness::with_fault(
                ScadaConfig::default(),
                &faults::stuck_temperature_probe(Tick::new(100)),
            )
            .run_batch_for(12_000),
            "temperature-sensor-spoof (attack)",
            ScadaHarness::with_attack(
                ScadaConfig::default(),
                &attacks::sensor_spoof(Tick::new(100)),
            )
            .run_batch_for(12_000),
        ),
        (
            "chiller-degradation (fault)",
            ScadaHarness::with_fault(
                ScadaConfig::default(),
                &faults::chiller_degradation(Tick::new(500), 0.05),
            )
            .run_batch_for(12_000),
            "cooling-dos (attack)",
            ScadaHarness::with_attack(
                ScadaConfig::default(),
                &attacks::cooling_dos(Tick::new(500)),
            )
            .run_batch_for(12_000),
        ),
    ];

    let mut rows = Vec::new();
    for (fault_name, fault_report, attack_name, attack_report) in &pairs {
        let mut fault_row = vec![(*fault_name).to_owned()];
        fault_row.extend(outcome(fault_report));
        rows.push(fault_row);
        let mut attack_row = vec![(*attack_name).to_owned()];
        attack_row.extend(outcome(attack_report));
        rows.push(attack_row);
    }
    print!(
        "{}",
        text_table(
            &[
                "Scenario (origin)",
                "Product",
                "SIS trip",
                "Exploded",
                "Hazards"
            ],
            &rows,
        )
    );
    println!(
        "\nEach fault/attack pair drives the plant into the same hazardous state — the\n\
         controllers cannot tell a broken sensor from a spoofed one. Securing the CPS\n\
         and keeping it safe are the same engineering problem, analyzed on one model."
    );
}
