//! Regenerates Table 1 of the paper: per-attribute counts of associated
//! attack patterns, weaknesses, and vulnerabilities for the SCADA model.
//!
//! Run with `cargo run --release --example table1 [scale]` where `scale`
//! (default 0.05) scales the synthetic corpus's vulnerability counts; 1.0
//! reproduces the paper's magnitudes exactly at the cost of indexing a
//! ~32k-record corpus.

use cpssec::analysis::render::text_table;
use cpssec::attackdb::seed::{seed_corpus, table1_attributes};
use cpssec::attackdb::synth::{generate, SynthSpec};
use cpssec::prelude::*;

/// The paper's reported values, for side-by-side comparison.
const PAPER: [(&str, usize, usize, usize); 6] = [
    ("Cisco ASA", 2, 1, 3776),
    ("NI RT Linux OS", 54, 75, 9673),
    ("Windows 7", 41, 73, 6627),
    ("Labview", 0, 0, 6),
    ("NI cRIO 9063", 0, 0, 7),
    ("NI cRIO 9064", 0, 0, 7),
];

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    let mut corpus = seed_corpus();
    corpus
        .merge(generate(&SynthSpec::paper2020(2020, scale)))
        .expect("seed and synthetic id spaces are disjoint");
    let stats = corpus.stats();
    eprintln!(
        "corpus: {} patterns, {} weaknesses, {} vulnerabilities (scale {scale})",
        stats.patterns, stats.weaknesses, stats.vulnerabilities
    );

    let engine = SearchEngine::build(&corpus);
    let mut rows = Vec::new();
    for (attribute, paper_p, paper_w, paper_v) in PAPER {
        let counts = engine.match_text(attribute).counts();
        rows.push(vec![
            attribute.to_owned(),
            format!("{} ({paper_p})", counts.0),
            format!("{} ({paper_w})", counts.1),
            format!("{} ({paper_v})", counts.2),
        ]);
    }
    println!("Table 1 — measured (paper) per attribute:");
    print!(
        "{}",
        text_table(
            &[
                "Attribute",
                "Attack Patterns",
                "Weaknesses",
                "Vulnerabilities"
            ],
            &rows,
        )
    );
    debug_assert_eq!(table1_attributes().len(), PAPER.len());
    println!(
        "\nAbsolute vulnerability counts scale with the corpus (scale {scale}); the paper's\n\
         shape — which attributes match many vs. few vectors — is corpus-size invariant."
    );
}
