//! Attack vectors to physical consequences: run every built-in attack
//! scenario against the simulated centrifuge and map the outcomes to
//! hazards and losses.
//!
//! Run with `cargo run --release --example attack_sim`.

use cpssec::analysis::consequence::standard_analysis;
use cpssec::analysis::render::text_table;
use cpssec::attackdb::seed::seed_corpus;
use cpssec::prelude::*;

fn main() {
    let corpus = seed_corpus();
    let engine = SearchEngine::build(&corpus);

    // Nominal reference batch first.
    let mut nominal = ScadaHarness::new(ScadaConfig::default());
    let baseline = nominal.run_batch();
    println!(
        "nominal batch: product={}, max temp {:.1} °C, max speed deviation {:.2} rpm\n",
        baseline.product, baseline.max_temperature_c, baseline.max_speed_deviation_rpm
    );

    let records = standard_analysis(&corpus, &engine, Fidelity::Implementation, 12_000);
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.target_component.clone(),
                r.confirmed_weaknesses.join(" "),
                r.product.to_string(),
                if r.emergency_stopped { "yes" } else { "no" }.to_owned(),
                r.hazard_ids.join(" "),
                r.loss_ids.join(" "),
            ]
        })
        .collect();
    print!(
        "{}",
        text_table(
            &[
                "Scenario",
                "Target",
                "Confirmed CWE",
                "Product",
                "SIS trip",
                "Hazards",
                "Losses"
            ],
            &rows,
        )
    );
    println!(
        "\n`Confirmed CWE` = weaknesses the design-phase association already surfaced for the\n\
         targeted component; hazards/losses come from the STPA-Sec structure driven by the\n\
         simulated plant excursion."
    );
}
