//! Regenerates Figure 1: the merged system-model + attack-vector view of
//! the particle separation centrifuge, as Graphviz DOT plus a text summary.
//!
//! Run with `cargo run --example figure1 > figure1.dot` and render with
//! `dot -Tpng figure1.dot -o figure1.png` if Graphviz is available.

use cpssec::attackdb::seed::seed_corpus;
use cpssec::prelude::*;

fn main() {
    let corpus = seed_corpus();
    let model = cpssec::scada::model::scada_model();
    let mut dashboard = Dashboard::new(corpus, model);

    // The DOT graph is the machine-readable Figure 1: topology + per-node
    // attack vector counts.
    println!("{}", dashboard.figure_dot());

    // Text companion on stderr so stdout stays valid DOT.
    eprintln!("merged view at {} fidelity:", dashboard.fidelity());
    for (component, matches) in dashboard.association().iter() {
        let (p, w, v) = matches.counts();
        eprintln!("  {component:24} AP={p:<3} CWE={w:<3} CVE={v}");
    }
    let bpcs_matches = dashboard
        .association()
        .matches("BPCS platform")
        .expect("BPCS is in the model")
        .clone();
    let chains = cpssec::search::exploit_chains(&bpcs_matches, dashboard.corpus(), 5);
    eprintln!("example exploit chains through the BPCS platform:");
    for chain in chains {
        eprintln!("  {chain}");
    }
}
