//! Offline resolution placeholder for `serde`.
//!
//! The workspace's `serde` support is entirely behind optional `serde`
//! features in `cpssec-model` and `cpssec-attackdb`, and no crate enables
//! those features in default builds — the dependency only has to *resolve*
//! for `cargo` to produce a lockfile without network access. This stub
//! declares the two marker traits so that, if the feature is ever toggled,
//! the compile error points here (derive support is not provided offline)
//! rather than at an unreachable registry.

/// Marker stand-in for `serde::Serialize` (no derive support offline).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no derive support offline).
pub trait Deserialize<'de> {}
