//! Offline mini benchmark harness exposing the subset of the criterion 0.5
//! API used by this workspace's benches.
//!
//! The registry is unreachable in this environment, so this crate stands in
//! for the real `criterion`. It keeps the same programming model — groups,
//! parameterized benchmark IDs, throughput annotations, `Bencher::iter` —
//! and reports wall-clock statistics (median / min / max per iteration) to
//! stdout. It does not do HTML reports, outlier classification, or
//! statistical regression testing; it exists so `cargo bench` compiles,
//! runs, and prints honest numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working like the real crate.
pub use std::hint::black_box;

/// Target wall-clock budget for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Warm-up budget before measurement starts.
const WARMUP_TARGET: Duration = Duration::from_millis(200);

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("query", 0.3)` renders as `query/0.3`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier with only a parameter component.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the closure given to `bench_function`/`bench_with_input`;
/// `iter` runs the routine repeatedly and records wall-clock time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` for the sample's iteration count, timing the whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Timed routine with per-iteration setup excluded from measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint for `iter_batched` (ignored by this mini harness).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// Per-iteration allocation.
    PerIteration,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.4} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of measured samples per benchmark (min 2 in this harness).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate throughput; reported as elements/sec alongside timings.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a routine with an explicit input value.
    pub fn bench_with_input<S: IntoBenchmarkId, I: ?Sized, R>(
        &mut self,
        id: S,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        self.run(&id.id, |b| routine(b, input));
        self
    }

    /// Benchmark a routine with no external input.
    pub fn bench_function<S: IntoBenchmarkId, R>(&mut self, id: S, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run(&id.id, |b| routine(b));
        self
    }

    fn run<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut routine: R) {
        // Warm-up: discover a per-iteration estimate while warming caches.
        let mut iters: u64 = 1;
        let warm_start = Instant::now();
        let per_iter = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            if warm_start.elapsed() >= WARMUP_TARGET {
                break b.elapsed / iters.max(1) as u32;
            }
            iters = iters.saturating_mul(2).min(1 << 20);
        };

        // Pick an iteration count so one sample lands near SAMPLE_TARGET.
        let iters_per_sample = if per_iter.is_zero() {
            1 << 20
        } else {
            (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos().max(1))
                .clamp(1, 1 << 24) as u64
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples.push(b.elapsed / iters_per_sample as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];

        let mut line = format!(
            "{}/{id}: median {} (min {}, max {}) [{} samples x {} iters]",
            self.name,
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            samples.len(),
            iters_per_sample
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let eps = n as f64 / median.as_secs_f64().max(1e-12);
            line.push_str(&format!(" — {eps:.0} elem/s"));
        }
        println!("{line}");
    }

    /// Finish the group (prints a separator; kept for API parity).
    pub fn finish(self) {
        println!();
    }
}

/// Conversion trait so `bench_function` accepts both `&str` and `BenchmarkId`.
pub trait IntoBenchmarkId {
    /// Convert into a concrete [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Top-level benchmark driver; one per `criterion_group!`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Standalone benchmark outside a group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        group.finish();
        self
    }

    /// Configure default sample size (builder style, like real criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(2);
        self
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declare the benchmark binary entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        let id = BenchmarkId::new("query", 0.3);
        assert_eq!(id.id, "query/0.3");
    }

    #[test]
    fn group_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn fmt_duration_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).contains('s'));
    }
}
