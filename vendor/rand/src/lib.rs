//! Offline, dependency-free drop-in for the subset of `rand` 0.8 this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! crate cannot be fetched. This vendored stand-in reimplements exactly the
//! API surface the workspace calls — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::choose` — and
//! is **bit-compatible** with `rand` 0.8.5 on that surface:
//!
//! * `StdRng` is ChaCha12 with the same state layout as `rand_chacha`
//!   (64-bit block counter in words 12–13, zero stream in words 14–15);
//! * `seed_from_u64` is `rand_core` 0.6's PCG32 expansion;
//! * `gen::<f64>()` is the 53-bit multiply construction;
//! * `gen_range` is the widening-multiply rejection sampler
//!   (`UniformInt::sample_single[_inclusive]`);
//! * `gen_bool` is the `Bernoulli` fixed-point comparison.
//!
//! Seeded corpora generated through this module therefore match what the
//! real crate would have produced, keeping every pinned test count honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 bits of the stream (two 32-bit words,
    /// low word first, as `rand_core`'s `BlockRng` composes them).
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with stream bytes (little-endian word order).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with PCG32, exactly as
    /// `rand_core` 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside range [0.0, 1.0]");
        if p >= 1.0 {
            // Bernoulli's ALWAYS_TRUE branch consumes no randomness.
            return true;
        }
        // Bernoulli::new: p_int = (p * 2^64) as u64.
        let p_int = (p * SCALE_2_POW_64) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

const SCALE_2_POW_64: f64 = 2.0 * (1u64 << 63) as f64;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: uniform over the full domain for integers,
/// uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random bits into the mantissa: (v >> 11) * 2^-53.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $next:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let range = high.wrapping_sub(low) as $unsigned as $u_large;
                // Lemire-style widening multiply with rejection zone, as in
                // rand 0.8.5's UniformInt::sample_single.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $u_large = rng.$next() as $u_large;
                    let m = (v as u128).wrapping_mul(range as u128);
                    let lo = m as $u_large;
                    let hi = (m >> <$u_large>::BITS) as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let range = (high.wrapping_sub(low) as $unsigned as $u_large).wrapping_add(1);
                if range == 0 {
                    // The range covers the whole domain.
                    return rng.$next() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $u_large = rng.$next() as $u_large;
                    let m = (v as u128).wrapping_mul(range as u128);
                    let lo = m as $u_large;
                    let hi = (m >> <$u_large>::BITS) as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u32, u32, u32, next_u32);
uniform_int_impl!(i32, u32, u32, next_u32);
uniform_int_impl!(u64, u64, u64, next_u64);
uniform_int_impl!(i64, u64, u64, next_u64);
uniform_int_impl!(usize, usize, u64, next_u64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_ROUNDS: usize = 12;

    /// The standard deterministic generator: ChaCha12, laid out exactly as
    /// `rand_chacha`'s `ChaCha12Rng` (so seeded streams are identical).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        /// Key words 0..8 of the ChaCha state (words 4..12 overall).
        key: [u32; 8],
        /// 64-bit block counter (state words 12..14).
        counter: u64,
        /// Current 16-word output block.
        block: [u32; 16],
        /// Next word to serve from `block`; 16 means "exhausted".
        index: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            const C: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
            let mut x = [0u32; 16];
            x[..4].copy_from_slice(&C);
            x[4..12].copy_from_slice(&self.key);
            x[12] = self.counter as u32;
            x[13] = (self.counter >> 32) as u32;
            // Words 14..16: stream id, fixed at zero (rand_chacha default).
            let initial = x;
            for _ in 0..CHACHA_ROUNDS / 2 {
                // Column round.
                quarter(&mut x, 0, 4, 8, 12);
                quarter(&mut x, 1, 5, 9, 13);
                quarter(&mut x, 2, 6, 10, 14);
                quarter(&mut x, 3, 7, 11, 15);
                // Diagonal round.
                quarter(&mut x, 0, 5, 10, 15);
                quarter(&mut x, 1, 6, 11, 12);
                quarter(&mut x, 2, 7, 8, 13);
                quarter(&mut x, 3, 4, 9, 14);
            }
            for (out, init) in x.iter_mut().zip(initial.iter()) {
                *out = out.wrapping_add(*init);
            }
            self.block = x;
            self.counter = self.counter.wrapping_add(1);
            self.index = 0;
        }
    }

    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let word = self.block[self.index];
            self.index += 1;
            word
        }

        fn next_u64(&mut self) -> u64 {
            let lo = u64::from(self.next_u32());
            let hi = u64::from(self.next_u32());
            (hi << 32) | lo
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            StdRng {
                key,
                counter: 0,
                block: [0; 16],
                index: 16,
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
        where
            R: Rng + ?Sized;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R>(&self, rng: &mut R) -> Option<&T>
        where
            R: Rng + ?Sized,
        {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn chacha_core_matches_reference_rotations() {
        // Structural sanity: a fresh generator from the zero seed must not
        // emit the raw initial state (the 12 rounds must mix).
        let mut rng = StdRng::seed_from_u64(0);
        let first = rng.next_u32();
        assert_ne!(first, 0x6170_7865);
    }
}
