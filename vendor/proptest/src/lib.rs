//! Offline mini property-testing harness.
//!
//! The build environment has no access to crates.io, so the real `proptest`
//! crate cannot be fetched. This vendored stand-in implements the subset of
//! the API this workspace uses — `proptest!`, `prop_compose!`,
//! `prop_assert*!`, regex-pattern string strategies, `prop_map` /
//! `prop_filter`, tuple and range strategies, `sample::{select, Index}`,
//! `collection::{vec, btree_map}`, and `any` — with the same call-site
//! syntax.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs and seed, but is
//!   not minimized;
//! * **regex support is a subset** — character classes (with ranges),
//!   `\PC` (any non-control character), and `{m,n}` / `{n}` counted
//!   repetition, which covers every pattern in this repository;
//! * cases are generated from a deterministic per-test seed, so failures
//!   reproduce without a regression file.
//!
//! The number of cases per property defaults to 64 and can be raised with
//! the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64 — quality is ample for test generation).
// ---------------------------------------------------------------------------

/// The generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for one `(test name, case index)` pair.
    #[must_use]
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty bound");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform draw from `[lo, hi)`.
    pub fn in_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below(range.end - range.start)
    }
}

/// Number of cases to run per property (`PROPTEST_CASES`, default 64).
#[must_use]
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators.
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying up to an internal cap.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.generate(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!("strategy rejected 1000 candidates in a row: {}", self.reason);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Tuples of strategies generate tuples of values, left to right.
macro_rules! tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// Integer ranges are strategies over their element type.
macro_rules! range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, usize);

// ---------------------------------------------------------------------------
// `any::<T>()` and Arbitrary.
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// String strategies from regex-like patterns.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Atom {
    /// `[...]` — inclusive char ranges (single chars are 1-wide ranges).
    Class(Vec<(char, char)>),
    /// `\PC` — any non-control character.
    AnyNonControl,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                assert!(
                    chars.get(i) != Some(&'^'),
                    "negated classes are not supported by the offline proptest stub"
                );
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class in {pattern}");
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '\\' => {
                let designator = (chars.get(i + 1), chars.get(i + 2));
                assert!(
                    designator == (Some(&'P'), Some(&'C')),
                    "only the \\PC escape is supported by the offline proptest stub"
                );
                i += 3;
                Atom::AnyNonControl
            }
            c => {
                i += 1;
                Atom::Class(vec![(c, c)])
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("repetition lower bound"),
                    hi.parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.parse().expect("repetition count");
                    (n, n)
                }
            };
            i = close + 1;
            (lo, hi)
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Class(ranges) => {
            let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
            let mut pick = rng.below(total as usize) as u32;
            for &(lo, hi) in ranges {
                let width = hi as u32 - lo as u32 + 1;
                if pick < width {
                    return char::from_u32(lo as u32 + pick).expect("valid scalar in class");
                }
                pick -= width;
            }
            unreachable!("pick is within total width")
        }
        Atom::AnyNonControl => {
            // Mostly printable ASCII, seasoned with multibyte non-controls.
            const EXOTIC: &[char] = &['é', 'Ü', 'ß', 'λ', '中', '—', '°', 'ø'];
            if rng.below(20) == 0 {
                EXOTIC[rng.below(EXOTIC.len())]
            } else {
                char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).expect("printable ascii")
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let count = if piece.max > piece.min {
                rng.in_range(piece.min..piece.max + 1)
            } else {
                piece.min
            };
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// sample / collection modules.
// ---------------------------------------------------------------------------

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }

    /// Chooses uniformly from `items` (which must be non-empty).
    #[must_use]
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }

    /// An index into a collection whose size is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `[0, size)`; `size` must be nonzero.
        #[must_use]
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "cannot index an empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{BTreeMap, Range, Strategy, TestRng};

    /// Strategy for vectors with sizes drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with length in `size`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeMap`s with sizes drawn from a range.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = rng.in_range(self.size.clone());
            let mut map = BTreeMap::new();
            // Duplicate keys collapse; retry a bounded number of times to
            // approach the target size, as real proptest does.
            for _ in 0..target * 4 {
                if map.len() >= target {
                    break;
                }
                map.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            map
        }
    }

    /// A `BTreeMap` of `keys → values` with size in `size`.
    #[must_use]
    pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { keys, values, size }
    }
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn` runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                let strategy = ($($strat,)+);
                for case in 0..cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                    let described = format!(
                        concat!($(concat!(stringify!($arg), " = {:?} ")),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest {}: case {case} failed with inputs: {described}",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Composes named sub-strategies into a derived strategy function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident()($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(($($strat,)+), move |($($arg,)+)| $body)
        }
    };
}

/// Asserts inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategies_respect_classes_and_counts() {
        let mut rng = TestRng::for_case("pattern", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{3,12}", &mut rng);
            assert!((3..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn leading_atom_then_counted_tail() {
        let mut rng = TestRng::for_case("tail", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z][a-zA-Z0-9 _.-]{0,20}", &mut rng);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().count() <= 21);
        }
    }

    #[test]
    fn non_control_pattern_never_emits_controls() {
        let mut rng = TestRng::for_case("pc", 0);
        for _ in 0..100 {
            let s = Strategy::generate(&"\\PC{0,100}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn filters_retry_until_accepted() {
        let mut rng = TestRng::for_case("filter", 0);
        let strategy = "[ a]{1,4}".prop_filter("nonblank", |s: &String| !s.trim().is_empty());
        for _ in 0..100 {
            assert!(!strategy.generate(&mut rng).trim().is_empty());
        }
    }

    #[test]
    fn select_and_index_cover_domains() {
        let mut rng = TestRng::for_case("select", 0);
        let strategy = prop::sample::select(vec![1, 2, 3]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strategy.generate(&mut rng) - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let idx: prop::sample::Index = Arbitrary::arbitrary(&mut rng);
        assert!(idx.index(7) < 7);
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = TestRng::for_case("coll", 0);
        let vecs = prop::collection::vec(0u8..10, 2..5);
        for _ in 0..50 {
            let v = vecs.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let maps = prop::collection::btree_map("[a-z]{1,8}", any::<bool>(), 1..8);
        for _ in 0..50 {
            let m = maps.generate(&mut rng);
            assert!((1..8).contains(&m.len()));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u8..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flag;
        }
    }
}
