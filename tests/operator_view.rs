//! Content-spoofing visibility: what the operator sees on the bus.
//!
//! CAPEC-148 (Content Spoofing) is about "content presented to an
//! operator, such as process values on a display, so decisions are made on
//! falsified data". These tests inspect the actual bus traffic the
//! workstation's monitoring reads produce during the sensor-spoof attack.

use cpssec::prelude::*;
use cpssec::scada::addresses;
use cpssec::scada::attacks;
use cpssec::sim::{BusOutcome, BusResponse, Tick};

/// Extracts the values the workstation's BPCS temperature reads returned
/// during the run (what the operator display showed).
fn displayed_temperatures(harness: &ScadaHarness) -> Vec<f64> {
    harness
        .sim()
        .bus()
        .log()
        .iter()
        .filter(|entry| {
            entry.request.src == addresses::WORKSTATION
                && entry.request.dst == addresses::BPCS
                && entry.request.address == cpssec::scada::addresses::bpcs::TEMPERATURE_X10
                && !entry.request.function.is_write()
        })
        .filter_map(|entry| match &entry.outcome {
            BusOutcome::Answered(BusResponse::Ok(values)) => Some(f64::from(values[0]) / 10.0),
            _ => None,
        })
        .collect()
}

#[test]
fn spoofed_sensor_falsifies_the_operator_display() {
    let mut harness = ScadaHarness::with_attack(
        ScadaConfig::default(),
        &attacks::sensor_spoof(Tick::new(100)),
    );
    let report = harness.run_batch_for(12_000);
    assert!(report.exploded, "the excursion must actually happen");

    let shown = displayed_temperatures(&harness);
    assert!(!shown.is_empty());
    // While the real temperature passed 60 °C, every value shown to the
    // operator after the attack window stayed pinned at the forged 35.0 °C.
    let late: Vec<f64> = shown.iter().rev().take(50).copied().collect();
    assert!(
        late.iter().all(|t| (*t - 35.0).abs() < 0.2),
        "operator display should show the forged value: {late:?}"
    );
    assert!(report.max_temperature_c >= 60.0);
}

#[test]
fn honest_sensor_shows_the_real_excursion() {
    // Same excursion caused physically (chiller degradation): the display
    // tracks the real temperature, so an operator could intervene.
    let mut harness = ScadaHarness::with_fault(
        ScadaConfig::default(),
        &cpssec::scada::faults::chiller_degradation(Tick::new(500), 0.05),
    );
    let report = harness.run_batch_for(12_000);
    let shown = displayed_temperatures(&harness);
    let max_shown = shown.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    assert!(
        max_shown > 40.0,
        "display should reveal the excursion: max shown {max_shown}"
    );
    assert!(report.emergency_stopped);
}

#[test]
fn nominal_display_tracks_the_plant_within_sensor_accuracy() {
    let mut harness = ScadaHarness::new(ScadaConfig::default());
    let report = harness.run_batch();
    assert_eq!(report.product, ProductQuality::Nominal);
    let shown = displayed_temperatures(&harness);
    let late: Vec<f64> = shown.iter().rev().take(20).copied().collect();
    for value in late {
        assert!(
            (value - 35.0).abs() < 1.0,
            "steady-state display ~35 °C, got {value}"
        );
    }
}
