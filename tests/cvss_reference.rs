//! CVSS v3.1 reference vectors.
//!
//! Canonical vector strings and the base scores NVD publishes for them.
//! These pin the from-scratch implementation to the specification across
//! the metric space: every attack vector value, scope change, privilege
//! interaction, and the zero-impact edge.

use cpssec::attackdb::{CvssVector, Severity};

const REFERENCE: &[(&str, f64)] = &[
    // Classic unauthenticated network RCE (EternalBlue-class with AC:L).
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8),
    // Scope-changed total compromise (Log4Shell-class).
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0),
    // High-complexity network RCE (EternalBlue's actual vector).
    ("CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", 8.1),
    // Authenticated network RCE.
    ("CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H", 8.8),
    // One-click network RCE.
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H", 8.8),
    // Adjacent-network full compromise.
    ("CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 8.8),
    // Local privilege escalation (Dirty COW class).
    ("CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H", 7.8),
    // Malicious-file local code execution.
    ("CVSS:3.1/AV:L/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H", 7.8),
    // High-complexity local escalation.
    ("CVSS:3.1/AV:L/AC:H/PR:L/UI:N/S:U/C:H/I:H/A:H", 7.0),
    // Administrator-only local compromise.
    ("CVSS:3.1/AV:L/AC:L/PR:H/UI:N/S:U/C:H/I:H/A:H", 6.7),
    // Physical-access full compromise.
    ("CVSS:3.1/AV:P/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 6.8),
    // Unauthenticated remote information disclosure (Heartbleed-class band).
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N", 7.5),
    // Unauthenticated remote denial of service.
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H", 7.5),
    // Partial remote information disclosure.
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N", 5.3),
    // Reflected cross-site scripting.
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N", 6.1),
    // No impact at all.
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0),
];

#[test]
fn reference_vectors_score_exactly() {
    for (vector, expected) in REFERENCE {
        let parsed: CvssVector = vector.parse().expect("reference vector parses");
        assert_eq!(
            parsed.base_score(),
            *expected,
            "{vector} should score {expected}"
        );
    }
}

#[test]
fn reference_vectors_round_trip_display() {
    for (vector, _) in REFERENCE {
        let parsed: CvssVector = vector.parse().unwrap();
        assert_eq!(&parsed.to_string(), vector);
    }
}

#[test]
fn severity_bands_agree_with_nvd_labels() {
    let expect = [
        (
            "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
            Severity::Critical,
        ),
        (
            "CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H",
            Severity::High,
        ),
        (
            "CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N",
            Severity::Medium,
        ),
        (
            "CVSS:3.1/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N",
            Severity::Low,
        ),
        (
            "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N",
            Severity::None,
        ),
    ];
    for (vector, severity) in expect {
        let parsed: CvssVector = vector.parse().unwrap();
        assert_eq!(parsed.severity(), severity, "{vector}");
    }
}

#[test]
fn exploitability_orders_attack_vectors() {
    // Network > Adjacent > Local > Physical, everything else equal.
    let scores: Vec<f64> = ["N", "A", "L", "P"]
        .iter()
        .map(|av| {
            format!("CVSS:3.1/AV:{av}/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")
                .parse::<CvssVector>()
                .unwrap()
                .exploitability()
        })
        .collect();
    assert!(scores.windows(2).all(|w| w[0] > w[1]), "{scores:?}");
}
