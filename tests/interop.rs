//! Interchange integration: GraphML and JSON Lines across the whole stack.

use cpssec::attackdb::jsonl::{from_jsonl, to_jsonl};
use cpssec::attackdb::seed::seed_corpus;
use cpssec::attackdb::synth::{generate, SynthSpec};
use cpssec::prelude::*;
use cpssec::Pipeline;

#[test]
fn corpus_jsonl_round_trip_preserves_analysis_results() {
    let mut corpus = seed_corpus();
    corpus
        .merge(generate(&SynthSpec::paper2020(2020, 0.01)))
        .unwrap();
    let text = to_jsonl(&corpus);
    let reloaded = from_jsonl(&text).expect("own export parses");

    let model = cpssec::scada::model::scada_model();
    let original = Pipeline::new(corpus, model.clone()).associate();
    let from_reloaded = Pipeline::new(reloaded, model).associate();
    assert_eq!(original, from_reloaded);
}

#[test]
fn corpus_can_be_extended_through_jsonl() {
    // A user appends an organization-specific vulnerability record to the
    // exported corpus and reloads it.
    let corpus = seed_corpus();
    let mut text = to_jsonl(&corpus);
    text.push_str(
        r#"{"type":"vulnerability","id":"CVE-2026-9999","description":"site-specific issue in the Acme batching extension for National Instruments LabVIEW","cvss":"CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:N","weaknesses":["CWE-20"],"affected":[{"vendor":"acme","product":"batching extension"}]}"#,
    );
    text.push('\n');
    let extended = from_jsonl(&text).expect("extended corpus parses");
    assert_eq!(
        extended.stats().vulnerabilities,
        corpus.stats().vulnerabilities + 1
    );

    // The new record is immediately searchable. (A multi-term query: on a
    // corpus this tiny the single-token idf criterion sits at a knife edge,
    // which is exactly the attribute-sensitivity the paper warns about.)
    let engine = SearchEngine::build(&extended);
    let hits = engine.match_text("National Instruments LabVIEW");
    assert!(hits.vulnerabilities.len() >= 4); // 3 seed + 1 appended
    assert!(hits
        .vulnerability_ids()
        .iter()
        .any(|id| id.to_string() == "CVE-2026-9999"));
}

#[test]
fn graphml_export_feeds_foreign_shaped_models_back() {
    // A minimal hand-written GraphML file — the shape a non-cpssec exporter
    // would produce (no name entries, unknown keys) — flows through the
    // full pipeline.
    let xml = r#"<?xml version="1.0"?>
    <graphml xmlns="http://graphml.graphdrawing.org/xmlns">
      <key id="d_kind" for="node" attr.name="kind" attr.type="string"/>
      <graph id="imported-plant" edgedefault="undirected">
        <node id="hmi"><data key="d_kind">hmi</data><data key="d_color">blue</data></node>
        <node id="plc"><data key="d_kind">controller</data></node>
        <node id="pump"><data key="d_kind">actuator</data></node>
        <edge id="e0" source="hmi" target="plc"><data key="d_ckind">ethernet</data></edge>
        <edge id="e1" source="plc" target="pump"><data key="d_ckind">analog</data></edge>
      </graph>
    </graphml>"#;
    let model = cpssec::model::from_graphml(xml).expect("foreign file imports");
    assert_eq!(model.component_count(), 3);
    assert_eq!(model.name(), "imported-plant");

    let map = Pipeline::new(seed_corpus(), model).associate();
    assert_eq!(map.iter().count(), 3);
}

#[test]
fn fidelity_projection_survives_graphml() {
    let model = cpssec::scada::model::scada_model();
    let projected = model.at_fidelity(Fidelity::Architectural);
    let round_tripped =
        cpssec::model::from_graphml(&cpssec::model::to_graphml(&projected)).unwrap();
    assert_eq!(round_tripped, projected);
    // The projected model never mentions implementation-level products.
    let ws = round_tripped.component_by_name("Programming WS").unwrap();
    assert!(ws.attributes().iter().all(|a| a.value() != "Windows 7"));
}

#[test]
fn jsonl_corpus_drives_the_fault_attack_comparison() {
    // A reloaded corpus and the simulation side compose end to end.
    let corpus = from_jsonl(&to_jsonl(&seed_corpus())).unwrap();
    let engine = SearchEngine::build(&corpus);
    let records = cpssec::analysis::consequence::standard_analysis(
        &corpus,
        &engine,
        Fidelity::Implementation,
        4_010,
    );
    assert!(!records.is_empty());
}
