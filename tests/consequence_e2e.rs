//! End-to-end attack-to-consequence integration: the paper's §3 narrative
//! executed against the full stack.

use cpssec::analysis::consequence::{analyze_scenario, standard_analysis};
use cpssec::analysis::stpa::centrifuge_analysis;
use cpssec::analysis::AssociationMap;
use cpssec::attackdb::seed::seed_corpus;
use cpssec::prelude::*;
use cpssec::scada::attacks;
use cpssec::sim::Tick;

fn association() -> (Corpus, AssociationMap) {
    let corpus = seed_corpus();
    let engine = SearchEngine::build(&corpus);
    let map = AssociationMap::build(
        &cpssec::scada::model::scada_model(),
        &engine,
        &corpus,
        Fidelity::Implementation,
        &FilterPipeline::new(),
    );
    (corpus, map)
}

#[test]
fn paper_narrative_cwe78_is_proposed_for_both_platforms() {
    // "both the BPCS and SIS platforms were proposed of being vulnerable to
    // CWE-78 – OS Command Injection" — our association must surface CWE-78
    // for both platforms at implementation fidelity.
    let (_, map) = association();
    for platform in ["BPCS platform", "SIS platform"] {
        let weaknesses = map.matches(platform).unwrap().weakness_ids();
        assert!(
            weaknesses.iter().any(|w| w.to_string() == "CWE-78"),
            "{platform}: {weaknesses:?}"
        );
    }
}

#[test]
fn paper_narrative_command_injection_destroys_product_or_centrifuge() {
    // "This attack may result in compromised control of the centrifuge,
    // manifesting in destruction of the manufactured product or damage to
    // the centrifuge itself."
    let (_, map) = association();
    let stpa = centrifuge_analysis();
    let config = ScadaConfig::default();

    // With the SIS armed: the manufactured product is destroyed (batch lost).
    let armed = analyze_scenario(
        &attacks::command_injection_bpcs(Tick::new(3000)),
        &map,
        &stpa,
        &config,
        4_010,
    );
    assert_ne!(armed.product, ProductQuality::Nominal);
    assert!(armed.loss_ids.contains(&"L-1".to_owned()));

    // With the SIS disabled (Triton): damage to the centrifuge itself.
    let disabled = analyze_scenario(
        &attacks::command_injection_with_sis_disabled(Tick::new(100), Tick::new(3000)),
        &map,
        &stpa,
        &config,
        4_010,
    );
    assert_eq!(disabled.product, ProductQuality::Destroyed);
    assert!(disabled.loss_ids.contains(&"L-2".to_owned()));
}

#[test]
fn sis_is_the_difference_between_product_loss_and_catastrophe() {
    let records = standard_analysis(
        &seed_corpus(),
        &SearchEngine::build(&seed_corpus()),
        Fidelity::Implementation,
        12_000,
    );
    let by_name = |name: &str| records.iter().find(|r| r.scenario == name).unwrap();

    // Scenarios stopped by the SIS never reach L-3 (injury).
    for safe in ["bpcs-command-injection", "cooling-dos"] {
        let record = by_name(safe);
        assert!(record.emergency_stopped, "{safe}");
        assert!(!record.loss_ids.contains(&"L-3".to_owned()), "{safe}");
    }
    // Scenarios that blind or disable the SIS reach the worst losses.
    for catastrophic in ["sis-disable-overtemperature", "temperature-sensor-spoof"] {
        let record = by_name(catastrophic);
        assert!(record.exploded, "{catastrophic}");
        assert!(
            record.loss_ids.contains(&"L-3".to_owned()),
            "{catastrophic}"
        );
    }
}

#[test]
fn every_scenario_weakness_maps_to_an_unsafe_control_action() {
    // The STPA-Sec structure must explain *how* each scenario's weaknesses
    // become unsafe control: every claimed CWE maps to at least one UCA.
    let stpa = centrifuge_analysis();
    for scenario in attacks::all_scenarios() {
        let explained = scenario
            .weakness_ids
            .iter()
            .any(|w| !stpa.ucas_for_weakness(w).is_empty());
        assert!(explained, "{}: {:?}", scenario.name, scenario.weakness_ids);
    }
}

#[test]
fn nominal_run_remains_nominal_under_every_seed() {
    for seed in [1, 7, 42, 1234, 99999] {
        let mut harness = ScadaHarness::new(ScadaConfig {
            sensor_seed: seed,
            ..ScadaConfig::default()
        });
        let report = harness.run_batch();
        assert_eq!(
            report.product,
            ProductQuality::Nominal,
            "seed {seed}: {report:?}"
        );
        assert!(report.hazards.is_empty(), "seed {seed}");
    }
}

#[test]
fn attack_consequences_are_deterministic_end_to_end() {
    let run = || {
        let (_, map) = association();
        analyze_scenario(
            &attacks::sensor_spoof(Tick::new(100)),
            &map,
            &centrifuge_analysis(),
            &ScadaConfig::default(),
            12_000,
        )
    };
    assert_eq!(run(), run());
}
