//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use cpssec::attackdb::{CvssVector, Severity};
use cpssec::model::{
    from_graphml, to_graphml, Attribute, AttributeKind, ChannelKind, Component, ComponentKind,
    Criticality, Fidelity, SystemModel,
};
use cpssec::search::text::{stem, tokenize};
use cpssec::search::{Filter, FilterPipeline, SearchEngine};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9 _.-]{0,20}"
        .prop_map(|s| s.trim().to_owned())
        .prop_filter("nonempty after trim", |s| !s.is_empty())
}

fn arb_kind() -> impl Strategy<Value = ComponentKind> {
    prop::sample::select(ComponentKind::ALL.to_vec())
}

fn arb_channel_kind() -> impl Strategy<Value = ChannelKind> {
    prop::sample::select(ChannelKind::ALL.to_vec())
}

fn arb_fidelity() -> impl Strategy<Value = Fidelity> {
    prop::sample::select(Fidelity::ALL.to_vec())
}

fn arb_attr_kind() -> impl Strategy<Value = AttributeKind> {
    prop::sample::select(AttributeKind::ALL.to_vec())
}

fn arb_criticality() -> impl Strategy<Value = Criticality> {
    prop::sample::select(Criticality::ALL.to_vec())
}

prop_compose! {
    fn arb_attribute()(
        kind in arb_attr_kind(),
        value in "[a-zA-Z0-9 .:-]{1,24}",
        fidelity in arb_fidelity(),
    ) -> Attribute {
        Attribute::new(kind, value).at_fidelity(fidelity)
    }
}

/// An arbitrary well-formed model: unique names, valid channel endpoints.
fn arb_model() -> impl Strategy<Value = SystemModel> {
    (
        prop::collection::btree_map(
            arb_name(),
            (
                arb_kind(),
                arb_criticality(),
                prop::collection::vec(arb_attribute(), 0..4),
                any::<bool>(),
            ),
            1..8,
        ),
        prop::collection::vec(
            (
                any::<prop::sample::Index>(),
                any::<prop::sample::Index>(),
                arb_channel_kind(),
            ),
            0..10,
        ),
    )
        .prop_map(|(components, edges)| {
            let mut model = SystemModel::new("generated").expect("valid name");
            let mut ids = Vec::new();
            for (name, (kind, criticality, attrs, entry)) in components {
                let mut component = Component::new(name, kind)
                    .with_criticality(criticality)
                    .with_entry_point(entry);
                for attr in attrs {
                    component.attributes_mut().insert(attr);
                }
                ids.push(model.add_component(component).expect("unique names"));
            }
            for (a, b, kind) in edges {
                let from = ids[a.index(ids.len())];
                let to = ids[b.index(ids.len())];
                if from != to {
                    model.add_channel(from, to, kind).expect("valid endpoints");
                }
            }
            model
        })
}

proptest! {
    #[test]
    fn graphml_round_trip_is_identity(model in arb_model()) {
        let xml = to_graphml(&model);
        let back = from_graphml(&xml).expect("own export parses");
        prop_assert_eq!(back, model);
    }

    #[test]
    fn generated_models_validate(model in arb_model()) {
        prop_assert!(model.validate().is_ok());
    }

    #[test]
    fn fidelity_projection_is_monotone(model in arb_model(), level in arb_fidelity()) {
        let projected = model.at_fidelity(level);
        prop_assert_eq!(projected.component_count(), model.component_count());
        prop_assert_eq!(projected.channel_count(), model.channel_count());
        // Attribute counts never grow, and Implementation keeps everything.
        prop_assert!(projected.stats().attributes <= model.stats().attributes);
        let full = model.at_fidelity(Fidelity::Implementation);
        prop_assert_eq!(full.stats().attributes, model.stats().attributes);
    }

    #[test]
    fn reachability_is_transitive_on_bidirectional_models(model in arb_model()) {
        for (a, _) in model.components() {
            for b in model.reachable_from(a) {
                for c in model.reachable_from(b) {
                    if c != a {
                        prop_assert!(
                            model.reachable_from(a).contains(&c),
                            "{a} reaches {b}, {b} reaches {c}, but {a} does not reach {c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shortest_path_is_no_longer_than_any_simple_path(model in arb_model()) {
        let ids: Vec<_> = model.components().map(|(id, _)| id).collect();
        for &a in &ids {
            for &b in &ids {
                if a == b { continue; }
                let simple = model.simple_paths(a, b, 6);
                if let Some(shortest) = model.shortest_path(a, b) {
                    for path in &simple {
                        prop_assert!(shortest.len() <= path.len());
                    }
                } else {
                    prop_assert!(simple.is_empty());
                }
            }
        }
    }

    #[test]
    fn tokenize_is_idempotent(text in "\\PC{0,100}") {
        let once = tokenize(&text);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    #[test]
    fn stemmed_tokens_are_never_longer(word in "[a-z]{1,20}") {
        prop_assert!(stem(&word).len() <= word.len() + 1); // "-ies" -> "-y" can shrink by 2, never grow >1
    }

    #[test]
    fn cvss_display_parse_round_trips(
        av in 0u8..4, ac in 0u8..2, pr in 0u8..3, ui in 0u8..2,
        s in 0u8..2, c in 0u8..3, i in 0u8..3, a in 0u8..3,
    ) {
        use cpssec::attackdb::{AttackComplexity, AttackVectorMetric, Impact, PrivilegesRequired, Scope, UserInteraction};
        let vector = CvssVector {
            av: [AttackVectorMetric::Network, AttackVectorMetric::Adjacent, AttackVectorMetric::Local, AttackVectorMetric::Physical][av as usize],
            ac: [AttackComplexity::Low, AttackComplexity::High][ac as usize],
            pr: [PrivilegesRequired::None, PrivilegesRequired::Low, PrivilegesRequired::High][pr as usize],
            ui: [UserInteraction::None, UserInteraction::Required][ui as usize],
            s: [Scope::Unchanged, Scope::Changed][s as usize],
            c: [Impact::None, Impact::Low, Impact::High][c as usize],
            i: [Impact::None, Impact::Low, Impact::High][i as usize],
            a: [Impact::None, Impact::Low, Impact::High][a as usize],
        };
        let parsed: CvssVector = vector.to_string().parse().expect("own display parses");
        prop_assert_eq!(parsed, vector);
        let score = vector.base_score();
        prop_assert!((0.0..=10.0).contains(&score));
        prop_assert_eq!(Severity::from_score(score), vector.severity());
    }

    #[test]
    fn filters_never_enlarge_result_sets(query in "[a-zA-Z0-9 ]{1,40}", k in 1usize..10) {
        let corpus = cpssec::attackdb::seed::seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let raw = engine.match_text(&query);
        let filtered = FilterPipeline::new()
            .then(Filter::SeverityAtLeast(Severity::Medium))
            .then(Filter::TopKPerFamily(k))
            .apply(&raw, &corpus);
        prop_assert!(filtered.total() <= raw.total());
        prop_assert!(filtered.patterns.len() <= k);
        prop_assert!(filtered.vulnerabilities.len() <= k);
    }

    #[test]
    fn search_scores_are_positive_and_sorted(query in "[a-zA-Z0-9 ]{1,40}") {
        let corpus = cpssec::attackdb::seed::seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let result = engine.match_text(&query);
        for family in [&result.patterns, &result.weaknesses, &result.vulnerabilities] {
            prop_assert!(family.windows(2).all(|w| w[0].score >= w[1].score));
            prop_assert!(family.iter().all(|h| h.score > 0.0 && h.score.is_finite()));
            prop_assert!(family.iter().all(|h| h.matched_terms >= 1));
        }
    }

    #[test]
    fn jsonl_round_trips_random_synthetic_corpora(seed in any::<u64>(), scale in 1u32..20) {
        use cpssec::attackdb::jsonl::{from_jsonl, to_jsonl};
        use cpssec::attackdb::synth::{generate, SynthSpec};
        let spec = SynthSpec::paper2020(seed, f64::from(scale) / 1000.0);
        let corpus = generate(&spec);
        let back = from_jsonl(&to_jsonl(&corpus)).expect("own export parses");
        prop_assert_eq!(back, corpus);
    }

    #[test]
    fn json_parser_round_trips_arbitrary_strings(text in "\\PC{0,60}") {
        use cpssec::attackdb::json::{parse, write_escaped};
        let mut encoded = String::new();
        write_escaped(&mut encoded, &text);
        let value = parse(&encoded).expect("escaped string parses");
        prop_assert_eq!(value.as_str(), Some(text.as_str()));
    }

    #[test]
    fn adding_an_attribute_never_reduces_matches(extra in "[a-zA-Z]{3,12}") {
        let corpus = cpssec::attackdb::seed::seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let base = Component::new("c", ComponentKind::Controller)
            .with_attribute(Attribute::new(AttributeKind::OperatingSystem, "Windows 7"));
        let more = base.clone()
            .with_attribute(Attribute::new(AttributeKind::Software, extra));
        let base_total = engine.match_component(&base, Fidelity::Implementation).total();
        let more_total = engine.match_component(&more, Fidelity::Implementation).total();
        prop_assert!(more_total >= base_total);
    }
}
