//! End-to-end: SCADA model at implementation fidelity → association →
//! filtering → rendered artifacts. Asserts the paper's Table 1 *shape*
//! (commodity technology attracts orders of magnitude more vectors than
//! niche lab equipment) and that the Figure 1 DOT output is structurally
//! valid (balanced braces, every edge endpoint declared as a node).

use cpssec_core::analysis::render::model_dot;
use cpssec_core::analysis::{attribute_rows, report, AssociationMap, SystemPosture};
use cpssec_core::attackdb::seed::seed_corpus;
use cpssec_core::attackdb::synth::{generate, SynthSpec};
use cpssec_core::attackdb::Corpus;
use cpssec_core::model::Fidelity;
use cpssec_core::prelude::{Filter, FilterPipeline, SearchEngine};
use cpssec_core::scada::model::scada_model;

fn paper_corpus() -> Corpus {
    let mut corpus = seed_corpus();
    corpus
        .merge(generate(&SynthSpec::paper2020(2020, 0.05)))
        .expect("disjoint id spaces");
    corpus
}

#[test]
fn scada_association_report_and_dot_are_coherent() {
    let corpus = paper_corpus();
    let engine = SearchEngine::build(&corpus);
    let model = scada_model();
    let filters = FilterPipeline::new();

    let association =
        AssociationMap::build(&model, &engine, &corpus, Fidelity::Implementation, &filters);
    let rows = attribute_rows(&model, &engine, &corpus, Fidelity::Implementation, &filters);
    let posture = SystemPosture::compute(&model, &corpus, &association);

    // --- Table 1 shape: commodity >> niche. -------------------------------
    let vulns_of = |needle: &str| -> usize {
        rows.iter()
            .filter(|r| r.attribute.contains(needle))
            .map(|r| r.vulnerabilities)
            .max()
            .unwrap_or_else(|| panic!("no Table 1 row mentions {needle}"))
    };
    let windows = vulns_of("Windows 7");
    let cisco = vulns_of("Cisco ASA");
    let labview = vulns_of("Labview");
    let crio = vulns_of("NI cRIO 9063");
    assert!(
        windows >= 10 * labview.max(1),
        "commodity OS ({windows}) should dwarf niche software ({labview})"
    );
    assert!(
        cisco >= 10 * crio.max(1),
        "commodity appliance ({cisco}) should dwarf niche hardware ({crio})"
    );

    // --- Filtering narrows, never widens. ---------------------------------
    let filtered = AssociationMap::build(
        &model,
        &engine,
        &corpus,
        Fidelity::Implementation,
        &FilterPipeline::new().then(Filter::TopKPerFamily(3)),
    );
    assert!(filtered.total_vectors() < association.total_vectors());
    assert!(filtered.total_vectors() > 0);

    // --- The Markdown report covers the pipeline's outputs. ---------------
    let markdown = report::render_report(&report::ReportInput {
        model: &model,
        corpus: &corpus,
        association: &association,
        attribute_rows: &rows,
        posture: &posture,
        consequences: &[],
    });
    assert!(markdown.contains("# Security analysis report"));
    assert!(markdown.contains("Windows 7"));
    assert!(markdown.contains("SIS platform"));

    // --- The DOT artifact is structurally sound. --------------------------
    let dot = model_dot(&model, Some(&association));
    let opens = dot.matches('{').count();
    let closes = dot.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces in DOT:\n{dot}");
    assert!(dot.trim_end().ends_with('}'));

    // Every edge endpoint must be a declared node id.
    let mut declared = Vec::new();
    let mut edges = Vec::new();
    for line in dot.lines().map(str::trim) {
        if let Some((endpoints, _)) = line.split_once('[') {
            if let Some((from, to)) = endpoints.split_once("--") {
                edges.push((from.trim().to_owned(), to.trim().to_owned()));
            } else if let Some(id) = endpoints.split_whitespace().next() {
                if id != "node" && !id.is_empty() {
                    declared.push(id.to_owned());
                }
            }
        }
    }
    assert_eq!(declared.len(), model.components().count());
    assert!(!edges.is_empty(), "Figure 1 must have channels:\n{dot}");
    for (from, to) in &edges {
        assert!(
            declared.contains(from),
            "edge endpoint {from} not declared:\n{dot}"
        );
        assert!(
            declared.contains(to),
            "edge endpoint {to} not declared:\n{dot}"
        );
    }
}
