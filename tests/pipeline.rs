//! End-to-end integration: the three capabilities chained together.

use cpssec::attackdb::seed::{seed_corpus, table1_attributes};
use cpssec::attackdb::synth::{generate, SynthSpec};
use cpssec::prelude::*;
use cpssec::Pipeline;

fn merged_corpus(scale: f64) -> Corpus {
    let mut corpus = seed_corpus();
    corpus
        .merge(generate(&SynthSpec::paper2020(2020, scale)))
        .expect("disjoint id spaces");
    corpus
}

#[test]
fn capability1_model_export_round_trips_through_graphml() {
    let model = cpssec::scada::model::scada_model();
    let xml = cpssec::model::to_graphml(&model);
    let imported = cpssec::model::from_graphml(&xml).expect("exporter output imports");
    assert_eq!(imported, model);

    // The imported model drives the same association as the original.
    let corpus = seed_corpus();
    let from_original = Pipeline::new(corpus.clone(), model).associate();
    let from_imported = Pipeline::new(corpus, imported).associate();
    assert_eq!(from_original, from_imported);
}

#[test]
fn capability2_association_covers_every_component() {
    let map = Pipeline::new(merged_corpus(0.01), cpssec::scada::model::scada_model()).associate();
    let model = cpssec::scada::model::scada_model();
    for (_, component) in model.components() {
        assert!(
            map.matches(component.name()).is_some(),
            "missing association for {}",
            component.name()
        );
    }
    // The paper's headline observation: the result space is large.
    assert!(map.total_vectors() > 100, "total {}", map.total_vectors());
}

#[test]
fn capability3_dashboard_reacts_to_edits_filters_and_fidelity() {
    let mut dashboard =
        Pipeline::new(merged_corpus(0.01), cpssec::scada::model::scada_model()).into_dashboard();
    let full = dashboard.association().total_vectors();

    dashboard.set_filters(FilterPipeline::new().then(Filter::SeverityAtLeast(Severity::High)));
    let severe_only = dashboard.association().total_vectors();
    assert!(severe_only < full);

    dashboard.set_fidelity(Fidelity::Conceptual);
    let conceptual = dashboard.association().total_vectors();
    assert!(conceptual < severe_only);

    dashboard.set_filters(FilterPipeline::new());
    dashboard.set_fidelity(Fidelity::Implementation);
    assert_eq!(dashboard.association().total_vectors(), full);
}

#[test]
fn table1_shape_holds_end_to_end() {
    let corpus = merged_corpus(0.02);
    let engine = SearchEngine::build(&corpus);
    let rows: Vec<(usize, usize, usize)> = table1_attributes()
        .iter()
        .map(|attr| engine.match_text(attr).counts())
        .collect();
    let [cisco, linux, win7, labview, crio63, crio64] = rows.as_slice() else {
        panic!("six rows expected");
    };
    // Ordering of vulnerability counts matches the paper.
    assert!(linux.2 > win7.2 && win7.2 > cisco.2 && cisco.2 > crio63.2);
    // OS attributes match tens of patterns/weaknesses; appliances few; niche none.
    assert!(linux.0 > 40 && win7.0 > 30);
    assert!(cisco.0 <= 5);
    assert_eq!(labview.0 + labview.1, 0);
    assert_eq!(crio63.0 + crio63.1, 0);
    assert_eq!(crio63, crio64);
    // Niche product rows match the paper exactly (they are seed + fixed synth).
    assert_eq!(labview.2, 6);
    assert_eq!(crio63.2, 7);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let mut dashboard = Pipeline::new(merged_corpus(0.01), cpssec::scada::model::scada_model())
            .into_dashboard();
        (
            dashboard.association().total_vectors(),
            dashboard.posture().total_score.to_bits(),
            dashboard.figure_dot(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn posture_ranks_commodity_platforms_worst() {
    let mut dashboard =
        Pipeline::new(merged_corpus(0.02), cpssec::scada::model::scada_model()).into_dashboard();
    let posture = dashboard.posture();
    let ws = posture.component("Programming WS").unwrap();
    let sensor = posture.component("Temperature sensor").unwrap();
    // The Windows 7 + LabVIEW workstation relates to far more vectors than
    // the passive probe.
    assert!(ws.total_vectors() > 10 * sensor.total_vectors().max(1));
}

#[test]
fn exploit_chains_connect_all_three_families_end_to_end() {
    let corpus = merged_corpus(0.01);
    let engine = SearchEngine::build(&corpus);
    let matches = engine.match_text("NI cRIO 9064");
    let chains = cpssec::search::exploit_chains(&matches, &corpus, 100);
    assert!(!chains.is_empty());
    for chain in &chains {
        assert!(corpus.vulnerability(chain.vulnerability).is_some());
        assert!(corpus.weakness(chain.weakness).is_some());
        assert!(corpus.pattern(chain.pattern).is_some());
    }
}
