//! Umbrella crate for the `cpssec` workspace.
//!
//! Re-exports [`cpssec_core`] so the examples and integration tests in
//! this repository can use a single dependency. Library users should
//! depend on `cpssec-core` (or the individual crates) directly.

pub use cpssec_core::{analysis, attackdb, campaign, model, prelude, scada, search, sim, Pipeline};
